// Data Pipeline stage of the MLOps framework (paper Fig 6): raw telemetry
// from the BMC collectors lands in an append-only, source-partitioned lake.
// An in-process stand-in for Huawei's DLI: same dataflow, no cluster.
//
// A partition is either *resident* (a FleetTrace in memory, the historical
// behaviour) or *spilled* (a shard set of compact binary trace-store files on
// disk — see src/sim/trace_store.h). Spilling happens transparently on
// ingest once a SpillPolicy is set and the partition crosses the resident
// threshold; consumers that stream (for_each_dimm) never notice the
// difference, while whole-trace consumers use get() (resident only) or
// materialize() (decodes a spilled partition back into a FleetTrace).
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/trace.h"

namespace memfp::mlops {

class DataLake {
 public:
  struct SpillPolicy {
    /// Root directory for spilled partitions ("" disables spilling).
    std::string dir;
    /// Partitions with more observed DIMMs than this spill on ingest.
    std::size_t max_resident_dimms = 0;
    /// Shard granularity of a spilled partition.
    std::size_t dimms_per_shard = 4096;
  };

  /// Installs (or clears, with an empty dir) the spill policy. Affects
  /// future ingests only; already-resident partitions stay resident.
  void set_spill_policy(SpillPolicy policy) { spill_ = std::move(policy); }

  /// Appends a fleet snapshot under a partition key, e.g. "bmc/purley/2023H1".
  /// Re-ingesting an existing partition replaces it (idempotent backfills) —
  /// including replacing a spilled shard set, whose files are deleted.
  void ingest(const std::string& partition, sim::FleetTrace trace);

  /// Adopts an existing sealed shard set (e.g. written by the fleet driver
  /// with keep_store) as a spilled partition, without re-encoding it (one
  /// decode pass seeds the record counter). The lake takes ownership of the
  /// files; the directory must hold at least one shard and all shards must
  /// agree on platform and horizon.
  void ingest_shards(const std::string& partition, const std::string& dir);

  bool contains(const std::string& partition) const;
  /// True when the partition is backed by on-disk shards.
  bool spilled(const std::string& partition) const;

  /// Resident access. Throws std::out_of_range when the partition is
  /// missing and std::logic_error when it is spilled (stream it with
  /// for_each_dimm, or decode it with materialize).
  const sim::FleetTrace& get(const std::string& partition) const;

  /// Decodes a partition into a resident FleetTrace by value (works for
  /// both backings). The spilled shard set stays on disk untouched.
  sim::FleetTrace materialize(const std::string& partition) const;

  /// Streams every DIMM of a partition in id order, one at a time —
  /// resident or spilled, the visitor sees the identical sequence of
  /// DimmTrace values. Spilled partitions hold one decoded DIMM (plus one
  /// shard's encoded bytes) resident at a time.
  void for_each_dimm(
      const std::string& partition,
      const std::function<void(const sim::DimmTrace&)>& visit) const;

  struct PartitionInfo {
    dram::Platform platform = dram::Platform::kIntelPurley;
    SimTime horizon = 0;
    std::size_t dimms = 0;
    std::size_t records = 0;
    bool spilled = false;
  };
  /// Metadata for any partition regardless of backing.
  PartitionInfo info(const std::string& partition) const;

  std::vector<std::string> partitions() const;

  /// Total raw records (CE + UE + events) across all partitions — the
  /// ingest-rate counter surfaced by the monitoring dashboards. O(1):
  /// maintained incrementally on ingest/replace.
  std::size_t record_count() const { return record_count_; }

 private:
  struct Partition {
    sim::FleetTrace resident;              // valid iff shard_files.empty()
    std::vector<std::string> shard_files;  // valid iff non-empty
    PartitionInfo meta;
  };

  void replace(const std::string& partition, Partition next);
  std::string spill_dir_for(const std::string& partition,
                            std::size_t generation) const;

  std::map<std::string, Partition> partitions_;
  SpillPolicy spill_;
  std::size_t record_count_ = 0;
  std::size_t spill_seq_ = 0;  // next spill generation (unique dir per ingest)
};

}  // namespace memfp::mlops
