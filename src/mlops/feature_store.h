// Feature Store stage (paper Fig 6): a catalog of feature definitions, a
// batch transformation path for model training, and a streaming serving path
// for online prediction — with a verifiable training/serving consistency
// guarantee (both paths run the same extractor).
#pragma once

#include "common/json.h"
#include "features/extractor.h"
#include "sim/trace.h"

namespace memfp::mlops {

class FeatureStore {
 public:
  explicit FeatureStore(features::PredictionWindows windows = {});

  /// Registered feature catalog: name, group, type, version.
  Json catalog() const;
  const features::FeatureSchema& schema() const {
    return extractor_.schema();
  }

  /// Batch transformation: labeled samples for training (one DIMM's trace).
  std::vector<features::Sample> batch_transform(const sim::DimmTrace& trace,
                                                SimTime horizon) const;

  /// Streaming serving: point-in-time-correct features for online scoring.
  /// One-shot — replays the trace prefix per call.
  std::vector<float> serve(const sim::DimmTrace& trace, SimTime t) const;

  /// Opens a persistent streaming extraction state for one DIMM: feed
  /// telemetry as it arrives, query features at non-decreasing times with no
  /// trace copies and no extractor reconstruction. Byte-identical to serve()
  /// and to batch_transform rows (the consistency guarantee).
  features::OnlineExtractorState open_stream(const sim::DimmTrace& trace) const;

  /// Training/serving consistency check: the batch row at time t must equal
  /// the served vector bit-for-bit. Returns false on any divergence.
  bool check_consistency(const sim::DimmTrace& trace, SimTime t,
                         SimTime horizon) const;

  const features::PredictionWindows& windows() const {
    return extractor_.windows();
  }

 private:
  features::FeatureExtractor extractor_;
  int catalog_version_ = 1;
};

}  // namespace memfp::mlops
