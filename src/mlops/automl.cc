#include "mlops/automl.h"

#include <limits>

#include "common/logging.h"
#include "ml/metrics.h"

namespace memfp::mlops {

AutoMlReport tune_gbdt(const ml::Dataset& train, const AutoMlConfig& config) {
  Rng rng(config.seed);

  // Holdout split by row (the caller already split by DIMM upstream).
  std::vector<std::size_t> order(train.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);
  const auto holdout = static_cast<std::size_t>(
      static_cast<double>(order.size()) * config.holdout_fraction);
  const std::vector<std::size_t> val_rows(
      order.begin(), order.begin() + static_cast<std::ptrdiff_t>(holdout));
  const std::vector<std::size_t> fit_rows(
      order.begin() + static_cast<std::ptrdiff_t>(holdout), order.end());
  const ml::Dataset fit_set = train.select(fit_rows);
  const ml::Dataset val_set = train.select(val_rows);

  std::vector<int> val_labels = val_set.y;

  AutoMlReport report;
  report.best_logloss = std::numeric_limits<double>::max();
  for (int trial = 0; trial < config.trials; ++trial) {
    ml::GbdtParams params;
    params.learning_rate = rng.uniform(0.03, 0.15);
    const int leaf_options[] = {15, 31, 63};
    params.tree.max_leaves = leaf_options[rng.uniform_u64(3)];
    params.tree.feature_fraction = rng.uniform(0.5, 1.0);
    params.tree.min_child_hessian = rng.uniform(1.0, 4.0);
    params.subsample = rng.uniform(0.6, 1.0);
    params.max_rounds = 150;
    params.early_stopping_rounds = 20;

    ml::Gbdt model(params);
    Rng fit_rng = rng.fork();
    model.fit(fit_set, fit_rng);
    const std::vector<double> scores = model.predict_batch(val_set.x);

    AutoMlTrial result;
    result.params = params;
    result.validation_logloss = ml::log_loss(scores, val_labels);
    result.validation_pr_auc = ml::pr_auc(scores, val_labels);
    if (result.validation_logloss < report.best_logloss) {
      report.best_logloss = result.validation_logloss;
      report.best = params;
    }
    MEMFP_DEBUG << "automl trial " << trial << ": lr "
                << params.learning_rate << ", leaves "
                << params.tree.max_leaves << " -> logloss "
                << result.validation_logloss;
    report.trials.push_back(std::move(result));
  }
  return report;
}

}  // namespace memfp::mlops
