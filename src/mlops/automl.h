// AutoML stage of the training pipeline (paper Fig 6, "ML Deployment":
// algorithm selection and hyperparameter tuning, manual or via AutoML).
// Random search over the GBDT hyperparameter space with a holdout fold,
// scored by validation logloss.
#pragma once

#include <vector>

#include "common/rng.h"
#include "ml/dataset.h"
#include "ml/gbdt.h"

namespace memfp::mlops {

struct AutoMlConfig {
  int trials = 12;
  double holdout_fraction = 0.2;
  std::uint64_t seed = 1;
};

struct AutoMlTrial {
  ml::GbdtParams params;
  double validation_logloss = 0.0;
  double validation_pr_auc = 0.0;
};

struct AutoMlReport {
  std::vector<AutoMlTrial> trials;  ///< in execution order
  ml::GbdtParams best;
  double best_logloss = 0.0;
};

/// Random-search tunes a GBDT on `train`. Deterministic in config.seed.
AutoMlReport tune_gbdt(const ml::Dataset& train, const AutoMlConfig& config);

}  // namespace memfp::mlops
