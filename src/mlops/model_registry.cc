#include "mlops/model_registry.h"

#include "common/logging.h"

namespace memfp::mlops {

const char* stage_name(ModelStage stage) {
  switch (stage) {
    case ModelStage::kStaging:
      return "staging";
    case ModelStage::kProduction:
      return "production";
    case ModelStage::kArchived:
      return "archived";
  }
  return "?";
}

int ModelRegistry::add(ModelVersion version) {
  version.version = next_version_++;
  version.stage = ModelStage::kStaging;
  const int id = version.version;
  versions_[id] = std::move(version);
  return id;
}

bool ModelRegistry::promote(int version, double min_improvement) {
  const auto it = versions_.find(version);
  if (it == versions_.end()) return false;
  ModelVersion& candidate = it->second;
  ModelVersion* incumbent = nullptr;
  for (auto& [id, entry] : versions_) {
    if (entry.platform == candidate.platform &&
        entry.stage == ModelStage::kProduction) {
      incumbent = &entry;
    }
  }
  if (incumbent != nullptr &&
      candidate.benchmark_f1 < incumbent->benchmark_f1 + min_improvement) {
    MEMFP_INFO << "registry: gate rejected v" << version << " (F1 "
               << candidate.benchmark_f1 << " vs incumbent "
               << incumbent->benchmark_f1 << ")";
    return false;
  }
  if (incumbent != nullptr) incumbent->stage = ModelStage::kArchived;
  candidate.stage = ModelStage::kProduction;
  MEMFP_INFO << "registry: promoted v" << version << " to production";
  return true;
}

const ModelVersion* ModelRegistry::production(dram::Platform platform) const {
  for (const auto& [id, entry] : versions_) {
    if (entry.platform == platform && entry.stage == ModelStage::kProduction) {
      return &entry;
    }
  }
  return nullptr;
}

const ModelVersion* ModelRegistry::get(int version) const {
  const auto it = versions_.find(version);
  return it == versions_.end() ? nullptr : &it->second;
}

std::vector<const ModelVersion*> ModelRegistry::versions(
    dram::Platform platform) const {
  std::vector<const ModelVersion*> out;
  for (const auto& [id, entry] : versions_) {
    if (entry.platform == platform) out.push_back(&entry);
  }
  return out;
}

Json ModelRegistry::to_json() const {
  Json entries = Json::array();
  for (const auto& [id, entry] : versions_) {
    Json e = Json::object();
    e.set("version", entry.version);
    e.set("platform", dram::platform_name(entry.platform));
    e.set("algorithm", entry.algorithm);
    e.set("f1", entry.benchmark_f1);
    e.set("virr", entry.benchmark_virr);
    e.set("threshold", entry.threshold);
    e.set("stage", stage_name(entry.stage));
    e.set("artifact", entry.artifact);
    entries.push_back(std::move(e));
  }
  Json out = Json::object();
  out.set("next_version", next_version_);
  out.set("models", std::move(entries));
  return out;
}

namespace {

dram::Platform platform_from_name(const std::string& name) {
  if (name == "Intel Purley") return dram::Platform::kIntelPurley;
  if (name == "Intel Whitley") return dram::Platform::kIntelWhitley;
  return dram::Platform::kK920;
}

ModelStage stage_from_name(const std::string& name) {
  if (name == "production") return ModelStage::kProduction;
  if (name == "archived") return ModelStage::kArchived;
  return ModelStage::kStaging;
}

}  // namespace

ModelRegistry ModelRegistry::from_json(const Json& json) {
  ModelRegistry registry;
  registry.next_version_ = static_cast<int>(json.at("next_version").as_int());
  for (const Json& e : json.at("models").as_array()) {
    ModelVersion entry;
    entry.version = static_cast<int>(e.at("version").as_int());
    entry.platform = platform_from_name(e.at("platform").as_string());
    entry.algorithm = e.at("algorithm").as_string();
    entry.benchmark_f1 = e.at("f1").as_number();
    entry.benchmark_virr = e.at("virr").as_number();
    entry.threshold = e.at("threshold").as_number();
    entry.stage = stage_from_name(e.at("stage").as_string());
    entry.artifact = e.at("artifact");
    registry.versions_[entry.version] = std::move(entry);
  }
  return registry;
}

}  // namespace memfp::mlops
