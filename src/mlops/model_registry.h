// ML Deployment stage (paper Fig 6): versioned model artifacts with
// benchmark-gated promotion from staging to production.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/json.h"
#include "dram/geometry.h"

namespace memfp::mlops {

enum class ModelStage { kStaging, kProduction, kArchived };

const char* stage_name(ModelStage stage);

struct ModelVersion {
  int version = 0;
  dram::Platform platform = dram::Platform::kIntelPurley;
  std::string algorithm;
  double benchmark_f1 = 0.0;
  double benchmark_virr = 0.0;
  double threshold = 0.5;
  ModelStage stage = ModelStage::kStaging;
  Json artifact;  ///< serialized model (ml::model_from_json-compatible)
};

class ModelRegistry {
 public:
  /// Registers a new version (enters staging). Returns the version number.
  int add(ModelVersion version);

  /// Benchmark gate: promotes `version` to production iff its F1 beats the
  /// current production model's by at least `min_improvement` (or there is
  /// no production model). The displaced model is archived.
  bool promote(int version, double min_improvement = 0.0);

  const ModelVersion* production(dram::Platform platform) const;
  const ModelVersion* get(int version) const;
  std::vector<const ModelVersion*> versions(dram::Platform platform) const;

  /// Durable registry metadata + artifacts.
  Json to_json() const;
  static ModelRegistry from_json(const Json& json);

 private:
  int next_version_ = 1;
  std::map<int, ModelVersion> versions_;
};

}  // namespace memfp::mlops
