// CI/CD stage (paper Fig 6): the automated training pipeline. Trains a
// candidate on a lake partition, benchmarks it with the paper's DIMM-level
// protocol, registers the artifact, and promotes it through the benchmark
// gate. Data Scientists iterate by calling this; MLOps engineers wire it to
// a schedule.
#pragma once

#include "core/pipeline.h"
#include "mlops/data_lake.h"
#include "mlops/model_registry.h"

namespace memfp::mlops {

struct TrainingPipelineConfig {
  core::Algorithm algorithm = core::Algorithm::kLightGbm;
  core::PipelineConfig pipeline;
  /// Promotion gate: candidate F1 must beat production by at least this.
  double min_improvement = 0.0;
};

struct TrainingRunReport {
  int version = 0;
  core::Experiment::Result evaluation;
  bool promoted = false;
};

/// Runs one end-to-end training + registration + gated promotion cycle on a
/// lake partition. Throws std::out_of_range for a missing partition and
/// std::invalid_argument for the trace-based rule baseline (it is not a
/// deployable feature-vector model).
TrainingRunReport run_training_pipeline(const DataLake& lake,
                                        const std::string& partition,
                                        ModelRegistry& registry,
                                        const TrainingPipelineConfig& config);

}  // namespace memfp::mlops
