// CI/CD stage (paper Fig 6): the automated training pipeline. Trains a
// candidate on a lake partition, benchmarks it with the paper's DIMM-level
// protocol, registers the artifact, and promotes it through the benchmark
// gate. Data Scientists iterate by calling this; MLOps engineers wire it to
// a schedule.
#pragma once

#include "core/pipeline.h"
#include "mlops/data_lake.h"
#include "mlops/model_registry.h"

namespace memfp::mlops {

struct TrainingPipelineConfig {
  core::Algorithm algorithm = core::Algorithm::kLightGbm;
  core::PipelineConfig pipeline;
  /// Promotion gate: candidate F1 must beat production by at least this.
  double min_improvement = 0.0;
};

struct TrainingRunReport {
  int version = 0;
  core::Experiment::Result evaluation;
  bool promoted = false;
};

/// Runs one end-to-end training + registration + gated promotion cycle on a
/// lake partition (resident or spilled — a spilled partition is decoded
/// once for the training run). Throws std::out_of_range for a missing
/// partition and std::invalid_argument for the trace-based rule baseline
/// (it is not a deployable feature-vector model).
TrainingRunReport run_training_pipeline(const DataLake& lake,
                                        const std::string& partition,
                                        ModelRegistry& registry,
                                        const TrainingPipelineConfig& config);

struct BatchScoringReport {
  std::size_t dimms = 0;
  std::size_t samples = 0;
  /// Samples whose score crossed the alarm threshold.
  std::size_t alarms = 0;
  double score_sum = 0.0;
  /// FNV-1a fold of every score's bits in DIMM/sample order. Byte-identical
  /// for a resident partition and its spilled twin (the codec round-trips
  /// traces exactly and predict_batch is bit-stable at any thread count).
  std::uint64_t score_hash = 0;
};

/// Scores every DIMM of a partition with a deployed model, streaming one
/// DIMM at a time through the lake (so a spilled million-DIMM partition
/// never materializes). The inference backfill path of the paper's Fig 6
/// Continuous Deployment loop.
BatchScoringReport run_batch_scoring(const DataLake& lake,
                                     const std::string& partition,
                                     const ml::BinaryClassifier& model,
                                     double threshold,
                                     const features::PredictionWindows&
                                         windows = {});

}  // namespace memfp::mlops
