// Cloud Service stage (paper Fig 2 and Fig 6): the alarm system receives
// failure predictions, the mitigation simulator turns alarms + ground truth
// into VM-interruption accounting — the realized VIRR, as opposed to the
// analytic (1 - y_c/precision) * recall formula.
#pragma once

#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "dram/events.h"
#include "features/windows.h"
#include "sim/trace.h"

namespace memfp::mlops {

struct Alarm {
  dram::DimmId dimm = 0;
  SimTime time = 0;
  double score = 0.0;
};

class AlarmSystem {
 public:
  /// Records an alarm; repeat alarms for the same DIMM are coalesced (the
  /// mitigation is already in flight).
  void raise(dram::DimmId dimm, SimTime time, double score);

  const std::vector<Alarm>& alarms() const { return alarms_; }
  std::optional<SimTime> first_alarm(dram::DimmId dimm) const;

 private:
  std::vector<Alarm> alarms_;
};

struct MitigationPolicy {
  double vms_per_server = 10.0;          ///< V_a
  double cold_migration_fraction = 0.1;  ///< y_c (paper's conservative value)
};

/// VM interruption accounting for one evaluated fleet.
struct MitigationReport {
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  std::size_t false_negatives = 0;
  double interruptions_without_prediction = 0.0;  ///< V  = V_a (TP + FN)
  double interruptions_with_prediction = 0.0;     ///< V' = V_a y_c (TP+FP) + V_a FN
  double realized_virr = 0.0;                     ///< (V - V') / V
};

/// Interruption balance from already-classified confusion totals — the
/// arithmetic half of account_mitigations, applied after alarms have been
/// joined with ground truth. The campaign engine (core/campaign) evaluates
/// many (threshold, policy) points from cached confusion counts, so this
/// stays inline in the header: core can reuse the exact accounting without a
/// core → mlops link dependency (memfp_mlops links memfp_core, not vice
/// versa).
inline MitigationReport account_confusion(std::size_t true_positives,
                                          std::size_t false_positives,
                                          std::size_t false_negatives,
                                          const MitigationPolicy& policy = {}) {
  MitigationReport report;
  report.true_positives = true_positives;
  report.false_positives = false_positives;
  report.false_negatives = false_negatives;
  const double va = policy.vms_per_server;
  const double yc = policy.cold_migration_fraction;
  const auto tp = static_cast<double>(true_positives);
  const auto fp = static_cast<double>(false_positives);
  const auto fn = static_cast<double>(false_negatives);
  report.interruptions_without_prediction = va * (tp + fn);
  report.interruptions_with_prediction = va * yc * (tp + fp) + va * fn;
  report.realized_virr =
      report.interruptions_without_prediction <= 0.0
          ? 0.0
          : (report.interruptions_without_prediction -
             report.interruptions_with_prediction) /
                report.interruptions_without_prediction;
  return report;
}

/// Joins alarms with ground-truth UEs under the lead/validity window rules
/// and computes the interruption balance.
MitigationReport account_mitigations(const sim::FleetTrace& fleet,
                                     const AlarmSystem& alarms,
                                     const features::PredictionWindows& windows,
                                     const MitigationPolicy& policy = {});

}  // namespace memfp::mlops
