#include "mlops/online_service.h"

#include "common/logging.h"
#include "ml/serialize.h"

namespace memfp::mlops {

OnlinePredictionService::OnlinePredictionService(
    const ModelRegistry& registry, dram::Platform platform,
    const FeatureStore& store, AlarmSystem& alarms, Monitoring& monitoring)
    : store_(&store),
      alarms_(&alarms),
      monitoring_(&monitoring),
      windows_(store.windows()) {
  const ModelVersion* production = registry.production(platform);
  if (production == nullptr) {
    MEMFP_WARN << "online service: no production model for "
               << dram::platform_name(platform);
    return;
  }
  try {
    model_ = ml::model_from_json(production->artifact);
    threshold_ = production->threshold;
  } catch (const std::exception& e) {
    MEMFP_ERROR << "online service: cannot load artifact v"
                << production->version << ": " << e.what();
  }
}

double OnlinePredictionService::score_features(
    dram::DimmId dimm, SimTime t, const std::vector<float>& features) {
  if (features.empty()) return 0.0;
  // Registry models are tree ensembles (model_from_json), so this single-row
  // score runs on the lazily compiled FlatEnsemble built at first tick.
  const double score = model_->predict(features);
  monitoring_->record_prediction(score);
  if (score >= threshold_) {
    alarms_->raise(dimm, t, score);
    monitoring_->record_alarm();
  }
  return score;
}

double OnlinePredictionService::score_dimm(const sim::DimmTrace& dimm,
                                           SimTime t) {
  if (!model_) return 0.0;
  return score_features(dimm.id, t, store_->serve(dimm, t));
}

void OnlinePredictionService::run_over(const sim::FleetTrace& fleet,
                                       SimTime start, SimTime end,
                                       SimDuration cadence) {
  if (!model_) return;
  std::vector<float> features;
  for (const sim::DimmTrace& dimm : fleet.dimms) {
    if (dimm.ces.empty()) continue;
    features::OnlineExtractorState stream = store_->open_stream(dimm);
    std::size_t next_ce = 0;
    std::size_t next_event = 0;
    for (SimTime t = start; t <= end; t += cadence) {
      if (dimm.ue && t >= dimm.ue->time) break;  // the DIMM already failed
      while (next_ce < dimm.ces.size() && dimm.ces[next_ce].time <= t) {
        stream.observe_ce(dimm.ces[next_ce++]);
      }
      while (next_event < dimm.events.size() &&
             dimm.events[next_event].time <= t) {
        stream.observe_event(dimm.events[next_event++]);
      }
      stream.features_at(t, features);
      score_features(dimm.id, t, features);
      if (alarms_->first_alarm(dimm.id)) break;  // mitigation in flight
    }
  }
}

void OnlinePredictionService::apply_feedback(const sim::FleetTrace& fleet) {
  for (const sim::DimmTrace& dimm : fleet.dimms) {
    const std::optional<SimTime> alarm = alarms_->first_alarm(dimm.id);
    if (dimm.predictable_ue()) {
      const SimTime ue = dimm.ue->time;
      const bool timely = alarm && ue - *alarm >= windows_.lead &&
                          ue - *alarm <= windows_.lead + windows_.prediction;
      if (timely) {
        monitoring_->record_alarm_feedback(true);
      } else {
        monitoring_->record_missed_failure();
        if (alarm) monitoring_->record_alarm_feedback(false);
      }
    } else if (alarm) {
      monitoring_->record_alarm_feedback(false);
    }
  }
}

}  // namespace memfp::mlops
