#include "mlops/online_service.h"

#include "common/logging.h"
#include "ml/serialize.h"

namespace memfp::mlops {

OnlinePredictionService::OnlinePredictionService(
    const ModelRegistry& registry, dram::Platform platform,
    const FeatureStore& store, AlarmSystem& alarms, Monitoring& monitoring,
    ServingConfig serving)
    : store_(&store),
      alarms_(&alarms),
      monitoring_(&monitoring),
      windows_(store.windows()) {
  const ModelVersion* production = registry.production(platform);
  if (production == nullptr) {
    MEMFP_WARN << "online service: no production model for "
               << dram::platform_name(platform);
    return;
  }
  try {
    model_ = ml::model_from_json(production->artifact);
    threshold_ = production->threshold;
    engine_ = std::make_unique<ServingEngine>(*model_, threshold_, store,
                                              alarms, monitoring,
                                              std::move(serving));
  } catch (const std::exception& e) {
    MEMFP_ERROR << "online service: cannot load artifact v"
                << production->version << ": " << e.what();
  }
}

std::optional<double> OnlinePredictionService::score_dimm(
    const sim::DimmTrace& dimm, SimTime t) {
  if (!engine_) return std::nullopt;
  // Registry models are tree ensembles (model_from_json), so this single-row
  // score runs on the lazily compiled FlatEnsemble built at first tick.
  return engine_->score_row(dimm.id, t, store_->serve(dimm, t));
}

ServingStats OnlinePredictionService::run_over(const sim::FleetTrace& fleet,
                                               SimTime start, SimTime end,
                                               SimDuration cadence) {
  if (!engine_) return {};
  return engine_->run_over(fleet, start, end, cadence);
}

void OnlinePredictionService::apply_feedback(const sim::FleetTrace& fleet) {
  for (const sim::DimmTrace& dimm : fleet.dimms) {
    const std::optional<SimTime> alarm = alarms_->first_alarm(dimm.id);
    if (dimm.predictable_ue()) {
      const SimTime ue = dimm.ue->time;
      const bool timely = alarm && ue - *alarm >= windows_.lead &&
                          ue - *alarm <= windows_.lead + windows_.prediction;
      if (timely) {
        monitoring_->record_alarm_feedback(true);
      } else {
        monitoring_->record_missed_failure();
        if (alarm) monitoring_->record_alarm_feedback(false);
      }
    } else if (alarm) {
      monitoring_->record_alarm_feedback(false);
    }
  }
}

}  // namespace memfp::mlops
