#include "mlops/feature_store.h"

namespace memfp::mlops {

FeatureStore::FeatureStore(features::PredictionWindows windows)
    : extractor_(windows) {}

Json FeatureStore::catalog() const {
  Json entries = Json::array();
  const features::FeatureSchema& schema = extractor_.schema();
  for (std::size_t i = 0; i < schema.size(); ++i) {
    const features::FeatureDef& def = schema.def(i);
    Json entry = Json::object();
    entry.set("name", def.name);
    entry.set("group", features::feature_group_name(def.group));
    entry.set("type", def.categorical ? "categorical" : "numeric");
    if (def.categorical) entry.set("cardinality", def.cardinality);
    entries.push_back(std::move(entry));
  }
  Json out = Json::object();
  out.set("version", catalog_version_);
  out.set("features", std::move(entries));
  return out;
}

std::vector<features::Sample> FeatureStore::batch_transform(
    const sim::DimmTrace& trace, SimTime horizon) const {
  return extractor_.extract(trace, horizon);
}

std::vector<float> FeatureStore::serve(const sim::DimmTrace& trace,
                                       SimTime t) const {
  return extractor_.features_at(trace, t);
}

features::OnlineExtractorState FeatureStore::open_stream(
    const sim::DimmTrace& trace) const {
  return extractor_.open_stream(trace.config, trace.workload);
}

bool FeatureStore::check_consistency(const sim::DimmTrace& trace, SimTime t,
                                     SimTime horizon) const {
  const std::vector<float> served = serve(trace, t);
  const std::vector<features::Sample> batch = batch_transform(trace, horizon);
  const features::Sample* at_t = nullptr;
  for (const features::Sample& sample : batch) {
    if (sample.time == t) {
      at_t = &sample;
      break;
    }
  }
  if (at_t == nullptr) return served.empty();
  return at_t->features == served;
}

}  // namespace memfp::mlops
