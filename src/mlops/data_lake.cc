#include "mlops/data_lake.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <system_error>
#include <utility>

#include "sim/trace_store.h"

namespace memfp::mlops {

namespace {

std::size_t trace_records(const sim::FleetTrace& trace) {
  std::size_t total = 0;
  for (const sim::DimmTrace& dimm : trace.dimms) {
    total += dimm.ces.size() + dimm.events.size() + (dimm.ue ? 1 : 0);
  }
  return total;
}

}  // namespace

void DataLake::replace(const std::string& partition, Partition next) {
  const auto it = partitions_.find(partition);
  if (it != partitions_.end()) {
    record_count_ -= it->second.meta.records;
    // A replaced spill is dead on disk too (idempotent backfill). Every
    // spill ingest writes into a fresh generation directory, so the old
    // generation's paths can never alias the replacement's files.
    std::error_code ec;
    for (const std::string& path : it->second.shard_files) {
      std::filesystem::remove(path, ec);
    }
    for (const std::string& path : it->second.shard_files) {
      // Prune the emptied generation directory; remove() refuses (sets ec)
      // while entries remain, so a shared/adopted dir is left alone.
      std::filesystem::remove(std::filesystem::path(path).parent_path(), ec);
    }
  }
  record_count_ += next.meta.records;
  partitions_[partition] = std::move(next);
}

std::string DataLake::spill_dir_for(const std::string& partition,
                                    std::size_t generation) const {
  // The sanitized leaf alone is ambiguous ("a/b" and "a_b" collide), so it
  // carries a hash of the raw key; the generation counter gives every spill
  // ingest a directory no earlier generation ever wrote to, which is what
  // makes replacing a live spilled partition safe.
  std::string leaf;
  leaf.reserve(partition.size() + 26);
  for (const char c : partition) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '-';
    leaf.push_back(safe ? c : '_');
  }
  const std::uint64_t hash =
      sim::fnv1a_bytes(sim::kFnvOffset, partition.data(), partition.size());
  char suffix[32];
  std::snprintf(suffix, sizeof(suffix), "-%016llx-g%06zu",
                static_cast<unsigned long long>(hash), generation);
  leaf += suffix;
  return (std::filesystem::path(spill_.dir) / leaf).string();
}

void DataLake::ingest(const std::string& partition, sim::FleetTrace trace) {
  Partition next;
  next.meta.platform = trace.platform;
  next.meta.horizon = trace.horizon;
  next.meta.dimms = trace.dimms.size();
  next.meta.records = trace_records(trace);

  const bool spill = !spill_.dir.empty() &&
                     trace.dimms.size() > spill_.max_resident_dimms;
  if (!spill) {
    next.resident = std::move(trace);
    replace(partition, std::move(next));
    return;
  }

  // Spill on ingest: encode the snapshot into a fresh shard set and keep
  // only the metadata resident. The generation counter guarantees the new
  // shards never land on the previous spill's paths, so replace() below can
  // delete the old files without touching these.
  const std::string dir = spill_dir_for(partition, spill_seq_++);
  std::filesystem::create_directories(dir);
  const std::size_t per_shard = std::max<std::size_t>(1, spill_.dimms_per_shard);
  for (std::size_t begin = 0, shard = 0; begin < trace.dimms.size();
       begin += per_shard, ++shard) {
    const std::size_t end =
        std::min(trace.dimms.size(), begin + per_shard);
    const std::string path = sim::shard_path(dir, shard);
    sim::ShardWriter writer(path, trace.platform, trace.horizon);
    for (std::size_t i = begin; i < end; ++i) {
      writer.append(trace.dimms[i]);
    }
    writer.finish();
    next.shard_files.push_back(path);
  }
  next.meta.spilled = true;
  replace(partition, std::move(next));
}

void DataLake::ingest_shards(const std::string& partition,
                             const std::string& dir) {
  if (!std::filesystem::is_directory(dir)) {
    throw std::invalid_argument("DataLake: " + dir + " is not a directory");
  }
  const std::vector<std::string> shards = sim::list_shards(dir);
  if (shards.empty()) {
    throw std::invalid_argument("DataLake: no shards under " + dir);
  }
  Partition next;
  next.shard_files = shards;
  next.meta.spilled = true;
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const sim::TraceReader reader(shards[s]);
    if (s == 0) {
      next.meta.platform = reader.platform();
      next.meta.horizon = reader.horizon();
    } else if (reader.platform() != next.meta.platform ||
               reader.horizon() != next.meta.horizon) {
      throw std::invalid_argument("DataLake: mixed platform/horizon in " +
                                  dir);
    }
    next.meta.dimms += reader.dimm_count();
    // One decode pass to seed the cached record counter; the shard bytes
    // themselves are adopted as-is.
    for (std::size_t i = 0; i < reader.dimm_count(); ++i) {
      const sim::DimmTrace dimm = reader.read_dimm(i);
      next.meta.records +=
          dimm.ces.size() + dimm.events.size() + (dimm.ue ? 1 : 0);
    }
  }
  replace(partition, std::move(next));
}

bool DataLake::contains(const std::string& partition) const {
  return partitions_.count(partition) > 0;
}

bool DataLake::spilled(const std::string& partition) const {
  const auto it = partitions_.find(partition);
  return it != partitions_.end() && it->second.meta.spilled;
}

const sim::FleetTrace& DataLake::get(const std::string& partition) const {
  const auto it = partitions_.find(partition);
  if (it == partitions_.end()) {
    throw std::out_of_range("DataLake: no partition " + partition);
  }
  if (it->second.meta.spilled) {
    throw std::logic_error("DataLake: partition " + partition +
                           " is spilled to disk; use for_each_dimm or "
                           "materialize");
  }
  return it->second.resident;
}

sim::FleetTrace DataLake::materialize(const std::string& partition) const {
  const auto it = partitions_.find(partition);
  if (it == partitions_.end()) {
    throw std::out_of_range("DataLake: no partition " + partition);
  }
  if (!it->second.meta.spilled) {
    return it->second.resident;
  }
  sim::FleetTrace fleet;
  fleet.platform = it->second.meta.platform;
  fleet.horizon = it->second.meta.horizon;
  fleet.dimms.reserve(it->second.meta.dimms);
  for (const std::string& path : it->second.shard_files) {
    const sim::TraceReader reader(path);
    for (std::size_t i = 0; i < reader.dimm_count(); ++i) {
      fleet.dimms.push_back(reader.read_dimm(i));
    }
  }
  return fleet;
}

void DataLake::for_each_dimm(
    const std::string& partition,
    const std::function<void(const sim::DimmTrace&)>& visit) const {
  const auto it = partitions_.find(partition);
  if (it == partitions_.end()) {
    throw std::out_of_range("DataLake: no partition " + partition);
  }
  if (!it->second.meta.spilled) {
    for (const sim::DimmTrace& dimm : it->second.resident.dimms) {
      visit(dimm);
    }
    return;
  }
  for (const std::string& path : it->second.shard_files) {
    const sim::TraceReader reader(path);
    for (std::size_t i = 0; i < reader.dimm_count(); ++i) {
      visit(reader.read_dimm(i));
    }
  }
}

DataLake::PartitionInfo DataLake::info(const std::string& partition) const {
  const auto it = partitions_.find(partition);
  if (it == partitions_.end()) {
    throw std::out_of_range("DataLake: no partition " + partition);
  }
  return it->second.meta;
}

std::vector<std::string> DataLake::partitions() const {
  std::vector<std::string> keys;
  keys.reserve(partitions_.size());
  for (const auto& [key, value] : partitions_) keys.push_back(key);
  return keys;
}

}  // namespace memfp::mlops
