#include "mlops/data_lake.h"

#include <stdexcept>

namespace memfp::mlops {

void DataLake::ingest(const std::string& partition, sim::FleetTrace trace) {
  partitions_[partition] = std::move(trace);
}

bool DataLake::contains(const std::string& partition) const {
  return partitions_.count(partition) > 0;
}

const sim::FleetTrace& DataLake::get(const std::string& partition) const {
  const auto it = partitions_.find(partition);
  if (it == partitions_.end()) {
    throw std::out_of_range("DataLake: no partition " + partition);
  }
  return it->second;
}

std::vector<std::string> DataLake::partitions() const {
  std::vector<std::string> keys;
  keys.reserve(partitions_.size());
  for (const auto& [key, value] : partitions_) keys.push_back(key);
  return keys;
}

std::size_t DataLake::record_count() const {
  std::size_t total = 0;
  for (const auto& [key, fleet] : partitions_) {
    for (const sim::DimmTrace& dimm : fleet.dimms) {
      total += dimm.ces.size() + dimm.events.size() + (dimm.ue ? 1 : 0);
    }
  }
  return total;
}

}  // namespace memfp::mlops
