#include "mlops/cicd.h"

#include <bit>
#include <stdexcept>

#include "common/logging.h"
#include "features/extractor.h"
#include "sim/trace_store.h"

namespace memfp::mlops {

TrainingRunReport run_training_pipeline(const DataLake& lake,
                                        const std::string& partition,
                                        ModelRegistry& registry,
                                        const TrainingPipelineConfig& config) {
  if (config.algorithm == core::Algorithm::kRiskyCePattern) {
    throw std::invalid_argument(
        "run_training_pipeline: the rule baseline is not deployable");
  }
  // Training consumes the whole partition; a spilled one is decoded into a
  // transient resident copy for the duration of the run.
  sim::FleetTrace decoded;
  if (lake.spilled(partition)) decoded = lake.materialize(partition);
  const sim::FleetTrace& fleet =
      lake.spilled(partition) ? decoded : lake.get(partition);
  core::Experiment experiment(fleet, config.pipeline);
  auto [result, model] = experiment.run_with_model(config.algorithm);

  ModelVersion version;
  version.platform = fleet.platform;
  version.algorithm = result.algorithm;
  version.benchmark_f1 = result.f1;
  version.benchmark_virr = result.virr;
  version.threshold = result.threshold;
  version.artifact = model->to_json();

  TrainingRunReport report;
  report.evaluation = result;
  report.version = registry.add(std::move(version));
  report.promoted = registry.promote(report.version, config.min_improvement);
  MEMFP_INFO << "cicd: trained " << result.algorithm << " on " << partition
             << " (F1 " << result.f1 << "), version " << report.version
             << (report.promoted ? " promoted" : " held in staging");
  return report;
}

BatchScoringReport run_batch_scoring(const DataLake& lake,
                                     const std::string& partition,
                                     const ml::BinaryClassifier& model,
                                     double threshold,
                                     const features::PredictionWindows&
                                         windows) {
  const features::FeatureExtractor extractor(windows);
  const DataLake::PartitionInfo info = lake.info(partition);

  BatchScoringReport report;
  report.score_hash = sim::kFnvOffset;
  lake.for_each_dimm(partition, [&](const sim::DimmTrace& dimm) {
    ++report.dimms;
    const std::vector<features::Sample> samples =
        extractor.extract(dimm, info.horizon);
    if (samples.empty()) return;
    ml::Matrix x;
    for (const features::Sample& sample : samples) {
      x.push_row(sample.features);
    }
    const std::vector<double> scores = model.predict_batch(x);
    report.samples += scores.size();
    for (const double score : scores) {
      report.score_sum += score;
      report.alarms += score >= threshold ? 1 : 0;
      report.score_hash = sim::fnv1a_u64(
          report.score_hash, std::bit_cast<std::uint64_t>(score));
    }
  });
  MEMFP_INFO << "cicd: batch-scored " << partition << " (" << report.dimms
             << " DIMMs, " << report.samples << " samples, " << report.alarms
             << " alarms)";
  return report;
}

}  // namespace memfp::mlops
