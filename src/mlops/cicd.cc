#include "mlops/cicd.h"

#include <stdexcept>

#include "common/logging.h"

namespace memfp::mlops {

TrainingRunReport run_training_pipeline(const DataLake& lake,
                                        const std::string& partition,
                                        ModelRegistry& registry,
                                        const TrainingPipelineConfig& config) {
  if (config.algorithm == core::Algorithm::kRiskyCePattern) {
    throw std::invalid_argument(
        "run_training_pipeline: the rule baseline is not deployable");
  }
  const sim::FleetTrace& fleet = lake.get(partition);
  core::Experiment experiment(fleet, config.pipeline);
  auto [result, model] = experiment.run_with_model(config.algorithm);

  ModelVersion version;
  version.platform = fleet.platform;
  version.algorithm = result.algorithm;
  version.benchmark_f1 = result.f1;
  version.benchmark_virr = result.virr;
  version.threshold = result.threshold;
  version.artifact = model->to_json();

  TrainingRunReport report;
  report.evaluation = result;
  report.version = registry.add(std::move(version));
  report.promoted = registry.promote(report.version, config.min_improvement);
  MEMFP_INFO << "cicd: trained " << result.algorithm << " on " << partition
             << " (F1 " << result.f1 << "), version " << report.version
             << (report.promoted ? " promoted" : " held in staging");
  return report;
}

}  // namespace memfp::mlops
