#include "mlops/monitoring.h"

#include "common/stats.h"
#include "common/string_utils.h"
#include "common/table.h"

namespace memfp::mlops {

void Monitoring::record_prediction(double score) {
  ++predictions_;
  current_scores_.push_back(score);
}

void Monitoring::record_alarm_feedback(bool was_true_positive) {
  if (was_true_positive) ++feedback_tp_;
  else ++feedback_fp_;
}

double Monitoring::online_precision() const {
  const std::size_t total = feedback_tp_ + feedback_fp_;
  return total == 0 ? 0.0
                    : static_cast<double>(feedback_tp_) /
                          static_cast<double>(total);
}

double Monitoring::online_recall() const {
  const std::size_t total = feedback_tp_ + missed_failures_;
  return total == 0 ? 0.0
                    : static_cast<double>(feedback_tp_) /
                          static_cast<double>(total);
}

void Monitoring::freeze_reference() {
  reference_scores_ = std::move(current_scores_);
  current_scores_.clear();
}

double Monitoring::score_psi() const {
  if (reference_scores_.empty() || current_scores_.empty()) return 0.0;
  return population_stability_index(reference_scores_, current_scores_, 10);
}

bool Monitoring::drift_detected(double threshold) const {
  return score_psi() > threshold;
}

std::string Monitoring::dashboard() const {
  TextTable table("MLOps Monitoring Dashboard");
  table.set_header({"signal", "value"});
  table.add_row({"raw records ingested", std::to_string(ingested_)});
  table.add_row({"predictions served", std::to_string(predictions_)});
  table.add_row({"alarms raised", std::to_string(alarms_)});
  table.add_row({"online precision (feedback)",
                 format_double(online_precision(), 3)});
  table.add_row({"online recall (feedback)",
                 format_double(online_recall(), 3)});
  table.add_row({"score PSI vs reference", format_double(score_psi(), 3)});
  table.add_row({"drift alert", drift_detected() ? "YES" : "no"});
  table.add_row({"scores shed (admission)", std::to_string(shed_scores_)});
  table.add_row({"DIMMs degraded (admission)",
                 std::to_string(degraded_dimms_)});
  table.add_row({"shard overload ticks", std::to_string(overload_ticks_)});
  table.add_row({"queue backpressure stalls", std::to_string(queue_stalls_)});
  return table.render();
}

}  // namespace memfp::mlops
