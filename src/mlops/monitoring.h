// Monitoring stage (paper Fig 6): counters for every pipeline phase, score
// drift detection via PSI against a reference window, feedback-driven online
// precision/recall estimates, and a text dashboard.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace memfp::mlops {

class Monitoring {
 public:
  // ---- counters ----
  void record_ingest(std::size_t records) { ingested_ += records; }
  void record_prediction(double score);
  void record_alarm() { ++alarms_; }
  /// Ground-truth feedback from the cloud service: was the alarm followed by
  /// a UE (true positive) or not?
  void record_alarm_feedback(bool was_true_positive);
  /// A UE that arrived with no alarm (missed failure).
  void record_missed_failure() { ++missed_failures_; }
  /// Admission-control outcome of a serving run (ServingEngine): scoring
  /// ticks shed, DIMMs degraded to coarse cadence, shard overload ticks and
  /// queue backpressure stalls. Accumulates across runs.
  void record_load_shedding(std::size_t shed_scores,
                            std::size_t degraded_dimms,
                            std::size_t overload_ticks,
                            std::size_t queue_stalls) {
    shed_scores_ += shed_scores;
    degraded_dimms_ += degraded_dimms;
    overload_ticks_ += overload_ticks;
    queue_stalls_ += queue_stalls;
  }

  std::size_t ingested() const { return ingested_; }
  std::size_t predictions() const { return predictions_; }
  std::size_t alarms() const { return alarms_; }
  std::size_t shed_scores() const { return shed_scores_; }
  std::size_t degraded_dimms() const { return degraded_dimms_; }
  std::size_t overload_ticks() const { return overload_ticks_; }
  std::size_t queue_stalls() const { return queue_stalls_; }

  /// Online precision/recall from the feedback stream (0 when no data).
  double online_precision() const;
  double online_recall() const;

  // ---- drift detection ----
  /// Freezes the current score window as the PSI reference and clears it.
  void freeze_reference();
  /// PSI between the reference score distribution and scores since the
  /// freeze. 0 when either side is empty.
  double score_psi() const;
  /// Standard alert threshold: PSI > 0.25 signals a major shift.
  bool drift_detected(double threshold = 0.25) const;

  /// Text dashboard of all signals.
  std::string dashboard() const;

 private:
  std::size_t ingested_ = 0;
  std::size_t predictions_ = 0;
  std::size_t alarms_ = 0;
  std::size_t feedback_tp_ = 0;
  std::size_t feedback_fp_ = 0;
  std::size_t missed_failures_ = 0;
  std::size_t shed_scores_ = 0;
  std::size_t degraded_dimms_ = 0;
  std::size_t overload_ticks_ = 0;
  std::size_t queue_stalls_ = 0;
  std::vector<double> reference_scores_;
  std::vector<double> current_scores_;
};

}  // namespace memfp::mlops
