// Monitoring stage (paper Fig 6): counters for every pipeline phase, score
// drift detection via PSI against a reference window, feedback-driven online
// precision/recall estimates, and a text dashboard.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace memfp::mlops {

class Monitoring {
 public:
  // ---- counters ----
  void record_ingest(std::size_t records) { ingested_ += records; }
  void record_prediction(double score);
  void record_alarm() { ++alarms_; }
  /// Ground-truth feedback from the cloud service: was the alarm followed by
  /// a UE (true positive) or not?
  void record_alarm_feedback(bool was_true_positive);
  /// A UE that arrived with no alarm (missed failure).
  void record_missed_failure() { ++missed_failures_; }

  std::size_t ingested() const { return ingested_; }
  std::size_t predictions() const { return predictions_; }
  std::size_t alarms() const { return alarms_; }

  /// Online precision/recall from the feedback stream (0 when no data).
  double online_precision() const;
  double online_recall() const;

  // ---- drift detection ----
  /// Freezes the current score window as the PSI reference and clears it.
  void freeze_reference();
  /// PSI between the reference score distribution and scores since the
  /// freeze. 0 when either side is empty.
  double score_psi() const;
  /// Standard alert threshold: PSI > 0.25 signals a major shift.
  bool drift_detected(double threshold = 0.25) const;

  /// Text dashboard of all signals.
  std::string dashboard() const;

 private:
  std::size_t ingested_ = 0;
  std::size_t predictions_ = 0;
  std::size_t alarms_ = 0;
  std::size_t feedback_tp_ = 0;
  std::size_t feedback_fp_ = 0;
  std::size_t missed_failures_ = 0;
  std::vector<double> reference_scores_;
  std::vector<double> current_scores_;
};

}  // namespace memfp::mlops
