// Simulation time: integral seconds since the start of the simulated epoch.
//
// The whole library runs on simulated time, never on the wall clock, so every
// run is bit-for-bit reproducible. Helpers below express the paper's window
// parameters (minutes/hours/days) as SimTime durations.
#pragma once

#include <cstdint>

namespace memfp {

/// Seconds since the simulated epoch (t = 0 is fleet deployment).
using SimTime = std::int64_t;

/// Durations, also in seconds.
using SimDuration = std::int64_t;

constexpr SimDuration kSecond = 1;
constexpr SimDuration kMinute = 60 * kSecond;
constexpr SimDuration kHour = 60 * kMinute;
constexpr SimDuration kDay = 24 * kHour;

constexpr SimDuration minutes(std::int64_t n) { return n * kMinute; }
constexpr SimDuration hours(std::int64_t n) { return n * kHour; }
constexpr SimDuration days(std::int64_t n) { return n * kDay; }

}  // namespace memfp
