#include "common/csv.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace memfp {
namespace {

bool needs_quoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

std::string encode_field(const std::string& field) {
  if (!needs_quoting(field)) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void encode_row(std::string& out, const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i != 0) out += ',';
    out += encode_field(row[i]);
  }
  out += '\n';
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void CsvWriter::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::runtime_error("CsvWriter: row width " +
                             std::to_string(row.size()) +
                             " != header width " +
                             std::to_string(header_.size()));
  }
  rows_.push_back(std::move(row));
}

std::string CsvWriter::to_string() const {
  std::string out;
  encode_row(out, header_);
  for (const auto& row : rows_) encode_row(out, row);
  return out;
}

void CsvWriter::save(const std::string& path) const {
  std::ofstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("CsvWriter: cannot open " + path);
  file << to_string();
  if (!file) throw std::runtime_error("CsvWriter: write failed for " + path);
}

std::size_t CsvTable::column(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  throw std::out_of_range("CsvTable: no column named " + name);
}

CsvTable parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> record;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&] {
    record.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_record = [&] {
    end_field();
    records.push_back(std::move(record));
    record.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        if (field.empty() && !field_started) {
          in_quotes = true;
          field_started = true;
        } else {
          throw std::runtime_error("parse_csv: stray quote");
        }
        break;
      case ',':
        end_field();
        break;
      case '\r':
        break;  // handled with the following \n
      case '\n':
        end_record();
        break;
      default:
        field += c;
        field_started = true;
        break;
    }
  }
  if (in_quotes) throw std::runtime_error("parse_csv: unterminated quote");
  if (field_started || !field.empty() || !record.empty()) end_record();

  if (records.empty()) throw std::runtime_error("parse_csv: empty input");
  CsvTable table;
  table.header = std::move(records.front());
  for (std::size_t r = 1; r < records.size(); ++r) {
    if (records[r].size() == 1 && records[r][0].empty()) continue;  // blank line
    if (records[r].size() != table.header.size()) {
      throw std::runtime_error("parse_csv: ragged row " + std::to_string(r));
    }
    table.rows.push_back(std::move(records[r]));
  }
  return table;
}

CsvTable load_csv(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("load_csv: cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse_csv(buffer.str());
}

}  // namespace memfp
