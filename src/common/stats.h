// Streaming and batch descriptive statistics used across feature extraction,
// calibration and benchmarking.
#pragma once

#include <cstddef>
#include <vector>

namespace memfp {

/// Welford online accumulator: mean/variance in one pass, numerically stable.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile with linear interpolation; q in [0, 1]. Sorts a copy.
double percentile(std::vector<double> values, double q);

double mean(const std::vector<double>& values);
double stddev(const std::vector<double>& values);

/// Pearson correlation; 0 when either side is constant or sizes mismatch.
double pearson(const std::vector<double>& x, const std::vector<double>& y);

/// Population Stability Index between two distributions over shared bins.
/// Standard drift measure: <0.1 stable, 0.1-0.25 moderate, >0.25 major shift.
double population_stability_index(const std::vector<double>& expected,
                                  const std::vector<double>& actual,
                                  std::size_t bins);

}  // namespace memfp
