#include "common/string_utils.h"

#include <cstdio>

namespace memfp {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      return parts;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view text) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
  };
  while (!text.empty() && is_space(text.front())) text.remove_prefix(1);
  while (!text.empty() && is_space(text.back())) text.remove_suffix(1);
  return text;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

std::string format_double(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", precision, value);
  return buffer;
}

std::string format_percent(double ratio, int precision) {
  return format_double(ratio * 100.0, precision) + "%";
}

}  // namespace memfp
