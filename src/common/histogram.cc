#include "common/histogram.h"

#include <algorithm>

#include "common/check.h"
#include "common/simd.h"

namespace memfp {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0.0) {
  MEMFP_CHECK(hi > lo && bins > 0)
      << "histogram needs a non-empty range and at least one bin";
}

void Histogram::add(double value, double weight) {
  std::size_t bin = 0;
  if (value > lo_) {
    // Clamp on the double side: the size_t cast of an over-range quotient
    // (value = +inf, or beyond 2^63 widths) is undefined, and on x86-64
    // actually produced bin 0 instead of the documented top-edge clamp.
    double q = (value - lo_) / width_;
    const double top = static_cast<double>(counts_.size() - 1);
    if (q > top) q = top;
    bin = static_cast<std::size_t>(q);
  }
  counts_[bin] += weight;
  total_ += weight;
}

void Histogram::add_range(std::span<const double> values, double weight) {
  const simd::KernelTable& kt = simd::kernels();
  std::uint32_t bins[256];
  std::size_t i = 0;
  while (i < values.size()) {
    const std::size_t chunk = std::min<std::size_t>(256, values.size() - i);
    kt.fixed_bins(values.data() + i, chunk, lo_, width_, counts_.size(), bins);
    for (std::size_t j = 0; j < chunk; ++j) {
      counts_[bins[j]] += weight;
      total_ += weight;
    }
    i += chunk;
  }
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin + 1);
}

double Histogram::fraction(std::size_t bin) const {
  return total_ == 0.0 ? 0.0 : counts_[bin] / total_;
}

void RatioByCategory::add(const std::string& category, bool hit) {
  Cell& cell = cells_[category];
  ++cell.trials;
  if (hit) ++cell.hits;
}

double RatioByCategory::rate(const std::string& category) const {
  const auto it = cells_.find(category);
  if (it == cells_.end() || it->second.trials == 0) return 0.0;
  return static_cast<double>(it->second.hits) /
         static_cast<double>(it->second.trials);
}

std::uint64_t RatioByCategory::trials(const std::string& category) const {
  const auto it = cells_.find(category);
  return it == cells_.end() ? 0 : it->second.trials;
}

std::uint64_t RatioByCategory::hits(const std::string& category) const {
  const auto it = cells_.find(category);
  return it == cells_.end() ? 0 : it->second.hits;
}

std::vector<std::string> RatioByCategory::categories() const {
  std::vector<std::string> keys;
  keys.reserve(cells_.size());
  for (const auto& [key, cell] : cells_) keys.push_back(key);
  return keys;
}

}  // namespace memfp
