#include "common/histogram.h"

#include <algorithm>

#include "common/check.h"

namespace memfp {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0.0) {
  MEMFP_CHECK(hi > lo && bins > 0)
      << "histogram needs a non-empty range and at least one bin";
}

void Histogram::add(double value, double weight) {
  std::size_t bin = 0;
  if (value > lo_) {
    bin = std::min(static_cast<std::size_t>((value - lo_) / width_),
                   counts_.size() - 1);
  }
  counts_[bin] += weight;
  total_ += weight;
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin + 1);
}

double Histogram::fraction(std::size_t bin) const {
  return total_ == 0.0 ? 0.0 : counts_[bin] / total_;
}

void RatioByCategory::add(const std::string& category, bool hit) {
  Cell& cell = cells_[category];
  ++cell.trials;
  if (hit) ++cell.hits;
}

double RatioByCategory::rate(const std::string& category) const {
  const auto it = cells_.find(category);
  if (it == cells_.end() || it->second.trials == 0) return 0.0;
  return static_cast<double>(it->second.hits) /
         static_cast<double>(it->second.trials);
}

std::uint64_t RatioByCategory::trials(const std::string& category) const {
  const auto it = cells_.find(category);
  return it == cells_.end() ? 0 : it->second.trials;
}

std::uint64_t RatioByCategory::hits(const std::string& category) const {
  const auto it = cells_.find(category);
  return it == cells_.end() ? 0 : it->second.hits;
}

std::vector<std::string> RatioByCategory::categories() const {
  std::vector<std::string> keys;
  keys.reserve(cells_.size());
  for (const auto& [key, cell] : cells_) keys.push_back(key);
  return keys;
}

}  // namespace memfp
