// The scalar reference lane: portable C++ with no vector arithmetic. Every
// other lane must reproduce these results bit for bit (MEMFP_SIMD=scalar
// is the ctest leg check.sh pins); the bodies are the original inner loops
// the dispatch layer lifted out of decision_tree.cc / binning.cc /
// tensor.cc / histogram.cc, unchanged in IEEE op order.
#include <algorithm>
#include <cstring>
#include <limits>

#include "common/simd_kernels.h"

namespace memfp::simd {
namespace {

void hist_rowmajor_scalar(const std::uint32_t* rows, std::size_t n,
                          const double* wp, const std::uint8_t* row_codes,
                          std::size_t features, double* hist,
                          const std::uint32_t* offset) {
  // Row-outer iteration; equivalent to the historical feature-outer loop
  // bit for bit because every (feature, bin) accumulator still sees its
  // adds in row order — per row, the touched slots are disjoint.
  for (std::size_t i = 0; i < n; ++i) {
    const auto r = static_cast<std::size_t>(rows[i]);
    const double w0 = wp[2 * r];
    const double w1 = wp[2 * r + 1];
    const std::uint8_t* c = row_codes + r * features;
    for (std::size_t f = 0; f < features; ++f) {
      double* slot = hist + 2 * (offset[f] + c[f]);
      slot[0] += w0;
      slot[1] += w1;
    }
  }
}

void hist_column_scalar(const std::uint32_t* rows, std::size_t n,
                        const double* gh, const std::uint8_t* codes,
                        double* hist) {
  for (std::size_t i = 0; i < n; ++i) {
    const auto r = static_cast<std::size_t>(rows[i]);
    const std::size_t code = codes[r];
    hist[2 * code] += gh[2 * r];
    hist[2 * code + 1] += gh[2 * r + 1];
  }
}

void hist_subtract_scalar(double* out, const double* parent,
                          const double* sibling, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = parent[i] - sibling[i];
}

void pair_sum_scalar(const std::uint32_t* rows, std::size_t n,
                     const double* wp, double* a, double* b) {
  double sa = 0.0, sb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto r = static_cast<std::size_t>(rows[i]);
    sa += wp[2 * r];
    sb += wp[2 * r + 1];
  }
  *a = sa;
  *b = sb;
}

double gini_impurity(double pos, double total) {
  if (total <= 0.0) return 0.0;
  const double p = pos / total;
  return 2.0 * p * (1.0 - p) * total;
}

void gini_gain_scan_scalar(const double* left_total, const double* left_pos,
                           int count, double total, double pos,
                           double parent_impurity, double min_samples_leaf,
                           double* gains) {
  for (int b = 0; b < count; ++b) {
    const double lt = left_total[b];
    const double lp = left_pos[b];
    const double rt = total - lt;
    const double rp = pos - lp;
    if (lt < min_samples_leaf || rt < min_samples_leaf) {
      gains[b] = -std::numeric_limits<double>::infinity();
      continue;
    }
    gains[b] =
        parent_impurity - gini_impurity(lp, lt) - gini_impurity(rp, rt);
  }
}

std::size_t partition_scalar(std::uint32_t* rows, std::size_t n,
                             const std::uint8_t* codes, std::uint8_t bin,
                             std::uint32_t* scratch, std::size_t /*guard*/) {
  std::size_t write = 0;
  std::size_t right = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t r = rows[i];
    if (codes[r] <= bin) {
      rows[write++] = r;
    } else {
      scratch[right++] = r;
    }
  }
  std::memcpy(rows + write, scratch, right * sizeof(std::uint32_t));
  return write;
}

void bin_transform_scalar(const float* column, std::size_t n,
                          const float* thresholds, int count,
                          std::uint8_t* codes) {
  const float* end = thresholds + count;
  for (std::size_t i = 0; i < n; ++i) {
    codes[i] = static_cast<std::uint8_t>(
        std::lower_bound(thresholds, end, column[i]) - thresholds);
  }
}

void fixed_bins_scalar(const double* values, std::size_t n, double lo,
                       double width, std::size_t bins, std::uint32_t* out) {
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t bin = 0;
    if (values[i] > lo) {
      // Clamp before the cast (matches Histogram::add and the vector
      // lanes): casting an over-range quotient — +inf included — is UB.
      double q = (values[i] - lo) / width;
      const double top = static_cast<double>(bins - 1);
      if (q > top) q = top;
      bin = static_cast<std::uint32_t>(q);
    }
    out[i] = bin;
  }
}

void gemm_scalar(const float* a, const float* b, float* out, std::size_t m,
                 std::size_t k, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    float* out_row = out + i * n;
    const float* a_row = a + i * k;
    for (std::size_t p = 0; p < k; ++p) {
      const float av = a_row[p];
      const float* b_row = b + p * n;
      std::size_t j = 0;
      for (; j + 4 <= n; j += 4) {
        out_row[j] += av * b_row[j];
        out_row[j + 1] += av * b_row[j + 1];
        out_row[j + 2] += av * b_row[j + 2];
        out_row[j + 3] += av * b_row[j + 3];
      }
      for (; j < n; ++j) out_row[j] += av * b_row[j];
    }
  }
}

void gemm_at_scalar(const float* a, const float* b, float* out, std::size_t m,
                    std::size_t k, std::size_t n) {
  for (std::size_t p = 0; p < k; ++p) {
    const float* a_row = a + p * m;
    const float* b_row = b + p * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float av = a_row[i];
      float* out_row = out + i * n;
      std::size_t j = 0;
      for (; j + 4 <= n; j += 4) {
        out_row[j] += av * b_row[j];
        out_row[j + 1] += av * b_row[j + 1];
        out_row[j + 2] += av * b_row[j + 2];
        out_row[j + 3] += av * b_row[j + 3];
      }
      for (; j < n; ++j) out_row[j] += av * b_row[j];
    }
  }
}

void gemm_bt_scalar(const float* a, const float* b, float* out, std::size_t m,
                    std::size_t k, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    float* out_row = out + i * n;
    // Four independent dot products per step, each with its own sequential
    // accumulation over k (bit-identical per output element).
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const float* b0 = b + j * k;
      const float* b1 = b0 + k;
      const float* b2 = b1 + k;
      const float* b3 = b2 + k;
      float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
      for (std::size_t p = 0; p < k; ++p) {
        const float av = a_row[p];
        acc0 += av * b0[p];
        acc1 += av * b1[p];
        acc2 += av * b2[p];
        acc3 += av * b3[p];
      }
      out_row[j] += acc0;
      out_row[j + 1] += acc1;
      out_row[j + 2] += acc2;
      out_row[j + 3] += acc3;
    }
    for (; j < n; ++j) {
      const float* b_row = b + j * k;
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += a_row[p] * b_row[p];
      out_row[j] += acc;
    }
  }
}

const KernelTable kScalarTable = {
    Level::kScalar,
    hist_rowmajor_scalar,
    hist_column_scalar,
    hist_subtract_scalar,
    pair_sum_scalar,
    gini_gain_scan_scalar,
    partition_scalar,
    bin_transform_scalar,
    fixed_bins_scalar,
    gemm_scalar,
    gemm_at_scalar,
    gemm_bt_scalar,
    /*flat_float_block=*/nullptr,
    /*flat_binned_block=*/nullptr,
};

}  // namespace

const KernelTable* scalar_table() { return &kScalarTable; }

}  // namespace memfp::simd
