#include "common/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/check.h"
#include "common/simd_kernels.h"

namespace memfp::simd {
namespace {

/// Does the *host CPU* execute this lane's instructions? Compile-time lane
/// availability is the provider's job (nullptr when not compiled in); this
/// guards against running an AVX-512 table on an AVX2-only machine.
bool cpu_supports(Level level) {
  switch (level) {
    case Level::kScalar:
      return true;
    case Level::kAvx2:
#if defined(__x86_64__)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Level::kAvx512:
#if defined(__x86_64__)
      // The lane uses F (gathers, masks), DQ (cvtepi64), BW (byte/word
      // compares) and VL (mixed widths); require all four like the TU does.
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512dq") != 0 &&
             __builtin_cpu_supports("avx512bw") != 0 &&
             __builtin_cpu_supports("avx512vl") != 0;
#else
      return false;
#endif
    case Level::kNeon:
#if defined(__aarch64__)
      return true;  // NEON is baseline on AArch64
#else
      return false;
#endif
  }
  return false;
}

const KernelTable* provider(Level level) {
  switch (level) {
    case Level::kScalar:
      return scalar_table();
    case Level::kAvx2:
      return avx2_table();
    case Level::kAvx512:
      return avx512_table();
    case Level::kNeon:
      return neon_table();
  }
  return nullptr;
}

/// One-time resolution: MEMFP_SIMD pins a lane (unknown or host-unsupported
/// values fall back to the scalar reference lane — never an illegal
/// instruction); empty or "auto" picks the best supported lane.
const KernelTable* resolve() {
  const char* env = std::getenv("MEMFP_SIMD");
  if (env != nullptr && env[0] != '\0' && std::strcmp(env, "auto") != 0) {
    Level requested;
    if (parse_level(env, &requested)) {
      if (const KernelTable* table = table_for(requested)) return table;
    }
    return scalar_table();
  }
  for (Level level : {Level::kAvx512, Level::kNeon, Level::kAvx2}) {
    if (const KernelTable* table = table_for(level)) return table;
  }
  return scalar_table();
}

std::atomic<const KernelTable*>& active_slot() {
  static std::atomic<const KernelTable*> slot{resolve()};
  return slot;
}

}  // namespace

const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kAvx2:
      return "avx2";
    case Level::kAvx512:
      return "avx512";
    case Level::kNeon:
      return "neon";
  }
  return "scalar";
}

bool parse_level(const char* name, Level* out) {
  for (Level level : {Level::kScalar, Level::kAvx2, Level::kAvx512,
                      Level::kNeon}) {
    if (std::strcmp(name, level_name(level)) == 0) {
      *out = level;
      return true;
    }
  }
  return false;
}

const KernelTable& kernels() {
  return *active_slot().load(std::memory_order_relaxed);
}

Level active_level() { return kernels().level; }

const KernelTable* table_for(Level level) {
  if (!cpu_supports(level)) return nullptr;
  return provider(level);
}

std::vector<Level> supported_levels() {
  std::vector<Level> levels{Level::kScalar};
  for (Level level : {Level::kAvx2, Level::kAvx512, Level::kNeon}) {
    if (table_for(level) != nullptr) levels.push_back(level);
  }
  return levels;
}

std::string cpu_features() {
  std::string features;
  const auto append = [&features](const char* name, bool present) {
    if (!present) return;
    if (!features.empty()) features += ' ';
    features += name;
  };
#if defined(__x86_64__)
  // __builtin_cpu_supports takes literal strings only, hence the unrolling.
  append("sse2", __builtin_cpu_supports("sse2") != 0);
  append("sse4.2", __builtin_cpu_supports("sse4.2") != 0);
  append("avx", __builtin_cpu_supports("avx") != 0);
  append("avx2", __builtin_cpu_supports("avx2") != 0);
  append("fma", __builtin_cpu_supports("fma") != 0);
  append("avx512f", __builtin_cpu_supports("avx512f") != 0);
  append("avx512dq", __builtin_cpu_supports("avx512dq") != 0);
  append("avx512bw", __builtin_cpu_supports("avx512bw") != 0);
  append("avx512vl", __builtin_cpu_supports("avx512vl") != 0);
#elif defined(__aarch64__)
  append("neon", true);
#else
  append("scalar-only", true);
#endif
  return features;
}

ScopedLevel::ScopedLevel(Level level)
    : prev_(active_slot().load(std::memory_order_relaxed)) {
  const KernelTable* table = table_for(level);
  MEMFP_CHECK(table != nullptr)
      << "simd: level " << level_name(level)
      << " is not supported on this host (see supported_levels())";
  active_slot().store(table, std::memory_order_relaxed);
}

ScopedLevel::~ScopedLevel() {
  active_slot().store(prev_, std::memory_order_relaxed);
}

}  // namespace memfp::simd
