// Open-addressing hash map from uint64 keys to small mapped values.
//
// The incremental extractor keeps half a dozen per-DIMM count maps that see
// one probe per CE on the serving hot path; `std::unordered_map` pays a heap
// node plus a bucket-list chase per probe there. FlatMap64 stores slots in
// one contiguous array with linear probing and backward-shift deletion, so a
// probe is a mix + a short linear scan over cache-resident slots. Iteration
// order is deliberately NOT exposed (no iterators): every consumer reads
// point lookups or scalar aggregates, which keeps the container impossible
// to misuse under the determinism contract (see the `unordered-iter` lint
// rule — there is no order here to depend on).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"

namespace memfp {

/// Finalizing 64-bit mix (splitmix64): full avalanche, so packed cell keys
/// whose entropy sits in high bits still spread across the table.
inline std::uint64_t mix_u64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

template <typename V>
class FlatMap64 {
 public:
  /// Value for `key`, default-constructing it on first access (the
  /// unordered_map::operator[] shape the extractor state uses).
  V& operator[](std::uint64_t key) {
    if (slots_.empty() || (size_ + 1) * 4 > capacity() * 3) grow();
    std::size_t i = mix_u64(key) & mask_;
    while (used_[i]) {
      if (slots_[i].key == key) return slots_[i].value;
      i = (i + 1) & mask_;
    }
    used_[i] = 1;
    slots_[i].key = key;
    slots_[i].value = V{};
    ++size_;
    return slots_[i].value;
  }

  /// Pointer to the mapped value, or nullptr when absent.
  V* find(std::uint64_t key) {
    if (slots_.empty()) return nullptr;
    std::size_t i = mix_u64(key) & mask_;
    while (used_[i]) {
      if (slots_[i].key == key) return &slots_[i].value;
      i = (i + 1) & mask_;
    }
    return nullptr;
  }
  const V* find(std::uint64_t key) const {
    return const_cast<FlatMap64*>(this)->find(key);
  }

  /// Erases `key` (which must be present) with backward-shift compaction, so
  /// probe chains stay tombstone-free no matter how many windows slide by.
  void erase(std::uint64_t key) {
    MEMFP_CHECK(!slots_.empty()) << "erase from empty FlatMap64";
    std::size_t i = mix_u64(key) & mask_;
    while (used_[i] && slots_[i].key != key) i = (i + 1) & mask_;
    MEMFP_CHECK(used_[i]) << "erase of absent key";
    std::size_t hole = i;
    std::size_t j = (hole + 1) & mask_;
    while (used_[j]) {
      const std::size_t home = mix_u64(slots_[j].key) & mask_;
      // Slot j may move into the hole only if its home position does not lie
      // strictly after the hole on j's probe path.
      if (((j - home) & mask_) >= ((j - hole) & mask_)) {
        slots_[hole] = std::move(slots_[j]);
        hole = j;
      }
      j = (j + 1) & mask_;
    }
    used_[hole] = 0;
    slots_[hole].value = V{};  // release held resources eagerly
    --size_;
    ++generation_;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Bumped whenever stored addresses may have moved (growth or
  /// backward-shift erase). Callers holding raw value pointers across calls
  /// (hot-path last-key caches) revalidate against this.
  std::uint64_t generation() const { return generation_; }

 private:
  struct Slot {
    std::uint64_t key = 0;
    V value{};
  };

  std::size_t capacity() const { return slots_.size(); }

  void grow() {
    ++generation_;
    const std::size_t cap = slots_.empty() ? 8 : capacity() * 2;
    std::vector<Slot> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_used = std::move(used_);
    slots_.assign(cap, Slot{});
    used_.assign(cap, 0);
    mask_ = cap - 1;
    for (std::size_t i = 0; i < old_slots.size(); ++i) {
      if (!old_used[i]) continue;
      std::size_t j = mix_u64(old_slots[i].key) & mask_;
      while (used_[j]) j = (j + 1) & mask_;
      used_[j] = 1;
      slots_[j] = std::move(old_slots[i]);
    }
  }

  std::vector<Slot> slots_;
  std::vector<std::uint8_t> used_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
  std::uint64_t generation_ = 0;
};

}  // namespace memfp
