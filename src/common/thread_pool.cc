#include "common/thread_pool.h"

#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>

#include "common/check.h"

namespace memfp {
namespace {

/// Which pool (if any) owns the current thread, and its worker index.
/// Lets submit() push nested tasks onto the owning worker's own deque.
thread_local ThreadPool* tls_pool = nullptr;
thread_local int tls_worker = -1;

std::atomic<int> g_width_limit{0};  // 0 = uncapped

}  // namespace

struct ThreadPool::WorkerQueue {
  std::mutex mutex;
  std::deque<std::function<void()>> tasks;
};

struct ThreadPool::Impl {
  std::vector<std::unique_ptr<WorkerQueue>> queues;
  std::mutex sleep_mutex;
  std::condition_variable sleep_cv;
  std::atomic<std::size_t> pending{0};
  std::atomic<bool> stopping{false};
  std::atomic<unsigned> next_victim{0};
};

ThreadPool::ThreadPool(int threads, int default_width)
    : impl_(std::make_unique<Impl>()) {
  const int want = threads > 0 ? threads : default_threads();
  // An absurd thread count is always a bug upstream (corrupt MEMFP_THREADS,
  // width confused with row count), and each worker costs a stack.
  MEMFP_CHECK_LE(want, 4096) << "implausible thread-pool size";
  default_width_ = default_width > 0 && default_width < want ? default_width
                                                             : want;
  const int workers = want > 1 ? want - 1 : 0;
  impl_->queues.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    impl_->queues.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    // The lock pairs with the sleep predicate: a worker between its predicate
    // check and the actual wait would otherwise miss this notification.
    std::lock_guard<std::mutex> lock(impl_->sleep_mutex);
    impl_->stopping.store(true, std::memory_order_release);
  }
  impl_->sleep_cv.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // Workers drain their queues before exiting, but tasks submitted from
  // outside after the last worker checked may remain: run them here.
  while (try_run_one(-1)) {
  }
}

int ThreadPool::default_threads() {
  if (const char* env = std::getenv("MEMFP_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool& ThreadPool::global() {
  // Keep at least 4 executors even on smaller machines so an explicit
  // above-core-count request (PipelineConfig::num_threads, ScopedLimit — the
  // 1-vs-4-thread determinism tests in particular) gets real threads; the
  // default section width stays at default_threads(), so nothing
  // oversubscribes unless explicitly asked to.
  static ThreadPool pool(default_threads() > 4 ? default_threads() : 4,
                         default_threads());
  return pool;
}

ThreadPool::ScopedLimit::ScopedLimit(int limit)
    : previous_(g_width_limit.load(std::memory_order_relaxed)) {
  if (limit > 0) g_width_limit.store(limit, std::memory_order_relaxed);
}

ThreadPool::ScopedLimit::~ScopedLimit() {
  g_width_limit.store(previous_, std::memory_order_relaxed);
}

int ThreadPool::current_limit() {
  return g_width_limit.load(std::memory_order_relaxed);
}

void ThreadPool::submit(std::function<void()> task) {
  MEMFP_CHECK(task != nullptr) << "submitted an empty task";
  if (impl_->queues.empty()) {
    task();  // no workers: degenerate single-thread pool runs inline
    return;
  }
  int target;
  if (tls_pool == this && tls_worker >= 0) {
    target = tls_worker;  // nested: keep the task hot on the owner's deque
  } else {
    target = static_cast<int>(
        impl_->next_victim.fetch_add(1, std::memory_order_relaxed) %
        impl_->queues.size());
  }
  {
    std::lock_guard<std::mutex> lock(impl_->queues[
        static_cast<std::size_t>(target)]->mutex);
    impl_->queues[static_cast<std::size_t>(target)]->tasks.push_back(
        std::move(task));
  }
  {
    // See ~ThreadPool: the empty critical section orders this increment
    // against a worker's predicate check so the wakeup cannot be lost.
    std::lock_guard<std::mutex> lock(impl_->sleep_mutex);
    impl_->pending.fetch_add(1, std::memory_order_release);
  }
  impl_->sleep_cv.notify_one();
}

bool ThreadPool::try_run_one(int self_index) {
  std::function<void()> task;
  const std::size_t queues = impl_->queues.size();
  // Own deque first (LIFO: newest task is cache-hot), then steal from the
  // other workers' deque fronts (FIFO: oldest task limits contention).
  if (self_index >= 0) {
    WorkerQueue& own = *impl_->queues[static_cast<std::size_t>(self_index)];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.back());
      own.tasks.pop_back();
    }
  }
  if (!task) {
    for (std::size_t step = 0; step < queues && !task; ++step) {
      const std::size_t victim =
          (static_cast<std::size_t>(self_index >= 0 ? self_index : 0) + 1 +
           step) %
          queues;
      if (self_index >= 0 && victim == static_cast<std::size_t>(self_index)) {
        continue;
      }
      WorkerQueue& other = *impl_->queues[victim];
      std::lock_guard<std::mutex> lock(other.mutex);
      if (!other.tasks.empty()) {
        task = std::move(other.tasks.front());
        other.tasks.pop_front();
      }
    }
  }
  if (!task) return false;
  impl_->pending.fetch_sub(1, std::memory_order_release);
  task();
  return true;
}

void ThreadPool::worker_loop(int index) {
  tls_pool = this;
  tls_worker = index;
  for (;;) {
    if (try_run_one(index)) continue;
    std::unique_lock<std::mutex> lock(impl_->sleep_mutex);
    impl_->sleep_cv.wait(lock, [this] {
      return impl_->pending.load(std::memory_order_acquire) > 0 ||
             impl_->stopping.load(std::memory_order_acquire);
    });
    if (impl_->stopping.load(std::memory_order_acquire) &&
        impl_->pending.load(std::memory_order_acquire) == 0) {
      break;
    }
  }
  tls_pool = nullptr;
  tls_worker = -1;
}

namespace {

/// Shared state of one parallel section. Heap-allocated and shared with the
/// runner tasks so a runner that starts after the section already finished
/// (its chunks all claimed by faster threads) still has valid state to read.
struct Section {
  const std::function<void(std::size_t)>* body = nullptr;
  std::size_t chunks = 0;
  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex mutex;  // guards error + completion signalling
  std::condition_variable done_cv;
  std::size_t completed = 0;

  /// Claims and executes chunks until the cursor is exhausted.
  void run() {
    for (;;) {
      const std::size_t c = cursor.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      if (!failed.load(std::memory_order_acquire)) {
        try {
          (*body)(c);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mutex);
          if (!error) error = std::current_exception();
          failed.store(true, std::memory_order_release);
        }
      }
      std::lock_guard<std::mutex> lock(mutex);
      if (++completed == chunks) done_cv.notify_all();
    }
  }
};

}  // namespace

void ThreadPool::run_chunked(std::size_t chunks,
                             const std::function<void(std::size_t)>& body) {
  if (chunks == 0) return;
  const int limit = current_limit();
  int width = limit > 0 ? limit : default_width_;
  if (width > size()) width = size();
  if (static_cast<std::size_t>(width) > chunks) {
    width = static_cast<int>(chunks);
  }
  if (width <= 1 || workers_.empty()) {
    // Serial fallback: same chunk order as the ordered reduction, so
    // single-threaded results are bit-identical to the parallel ones.
    for (std::size_t c = 0; c < chunks; ++c) body(c);
    return;
  }

  auto section = std::make_shared<Section>();
  section->body = &body;
  section->chunks = chunks;
  for (int r = 0; r < width - 1; ++r) {
    submit([section] { section->run(); });
  }
  section->run();  // the calling thread is always one of the runners
  {
    std::unique_lock<std::mutex> lock(section->mutex);
    section->done_cv.wait(lock,
                          [&] { return section->completed == chunks; });
    if (section->error) std::rethrow_exception(section->error);
  }
  // `body` may now be destroyed; straggler runners only touch the cursor.
  section->body = nullptr;
}

}  // namespace memfp
