#include "common/table.h"

#include <algorithm>

namespace memfp {

TextTable::TextTable(std::string title) : title_(std::move(title)) {}

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back({false, std::move(row)});
}

void TextTable::add_rule() { rows_.push_back({true, {}}); }

std::string TextTable::render() const {
  std::size_t columns = header_.size();
  for (const auto& row : rows_) columns = std::max(columns, row.cells.size());
  std::vector<std::size_t> widths(columns, 0);
  auto measure = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  measure(header_);
  for (const auto& row : rows_) {
    if (!row.rule) measure(row.cells);
  }

  auto render_rule = [&](std::string& out) {
    out += '+';
    for (std::size_t w : widths) {
      out.append(w + 2, '-');
      out += '+';
    }
    out += '\n';
  };
  auto render_cells = [&](std::string& out,
                          const std::vector<std::string>& cells) {
    out += '|';
    for (std::size_t i = 0; i < columns; ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      out += ' ';
      out += cell;
      out.append(widths[i] - cell.size() + 1, ' ');
      out += '|';
    }
    out += '\n';
  };

  std::string out;
  if (!title_.empty()) out += title_ + "\n";
  render_rule(out);
  if (!header_.empty()) {
    render_cells(out, header_);
    render_rule(out);
  }
  for (const auto& row : rows_) {
    if (row.rule) {
      render_rule(out);
    } else {
      render_cells(out, row.cells);
    }
  }
  render_rule(out);
  return out;
}

}  // namespace memfp
