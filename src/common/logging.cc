#include "common/logging.h"

#include <atomic>
#include <iostream>
#include <mutex>

namespace memfp {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};

// Serializes sink writes: log records are emitted from thread-pool tasks
// (fleet simulation, parallel scoring), and interleaved partial lines would
// otherwise garble the output.
std::mutex g_sink_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

namespace detail {

void log_line(LogLevel level, const std::string& message) {
  // Compose the whole record first so the lock covers exactly one write.
  std::string line;
  line.reserve(message.size() + 16);
  line += '[';
  line += level_name(level);
  line += "] ";
  line += message;
  line += '\n';
  std::ostream& out = level >= LogLevel::kWarning ? std::cerr : std::clog;
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  out << line;
}

}  // namespace detail
}  // namespace memfp
