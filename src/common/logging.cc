#include "common/logging.h"

#include <iostream>

namespace memfp {
namespace {

LogLevel g_level = LogLevel::kWarning;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }

LogLevel log_level() { return g_level; }

namespace detail {

void log_line(LogLevel level, const std::string& message) {
  std::ostream& out =
      level >= LogLevel::kWarning ? std::cerr : std::clog;
  out << "[" << level_name(level) << "] " << message << '\n';
}

}  // namespace detail
}  // namespace memfp
