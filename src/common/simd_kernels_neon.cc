// NEON lane (aarch64): the width-generic kernel bodies at 128 bits
// (2 doubles / 4 floats) — NEON is baseline on aarch64, so no extra -m
// flags; the TU still gets -ffp-contract=off because aarch64 GCC defaults
// to contract=fast, which would fuse mul+add the scalar lane keeps
// separate. The flat-ensemble descents and the compress-store partition
// need AVX-512-style gathers, so callers keep their scalar fallbacks.
#include "common/simd_kernels.h"

#if defined(__aarch64__)

#include <vector>

#include "common/simd_kernels_generic.h"

namespace memfp::simd {
namespace {

void gemm_bt_neon(const float* a, const float* b, float* out, std::size_t m,
                  std::size_t k, std::size_t n) {
  thread_local std::vector<float> bt;
  bt.resize(k * n);
  generic::gemm_bt<4>(a, b, out, m, k, n, bt.data());
}

const KernelTable kNeonTable = {
    Level::kNeon,
    generic::hist_rowmajor,
    generic::hist_column,
    generic::hist_subtract<2>,
    generic::pair_sum,
    generic::gini_gain_scan<2>,
    /*partition=*/nullptr,
    generic::bin_transform<4>,
    generic::fixed_bins<2>,
    generic::gemm<4>,
    generic::gemm_at<4>,
    gemm_bt_neon,
    /*flat_float_block=*/nullptr,
    /*flat_binned_block=*/nullptr,
};

}  // namespace

const KernelTable* neon_table() { return &kNeonTable; }

}  // namespace memfp::simd

#else  // !__aarch64__

namespace memfp::simd {
const KernelTable* neon_table() { return nullptr; }
}  // namespace memfp::simd

#endif
