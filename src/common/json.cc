#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace memfp {
namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("Json: " + what);
}

void encode_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void encode_number(std::string& out, double n) {
  if (std::isnan(n) || std::isinf(n)) {
    out += "null";  // JSON has no NaN/Inf; registry consumers treat as null.
    return;
  }
  if (n == std::floor(n) && std::fabs(n) < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%lld",
                  static_cast<long long>(n));
    out += buffer;
  } else {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.17g", n);
    out += buffer;
  }
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return value;
  }

 private:
  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }
  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  void expect(char c) {
    if (take() != c) fail(std::string("expected '") + c + "'");
  }
  bool consume_literal(const char* literal) {
    std::size_t len = 0;
    while (literal[len] != '\0') ++len;
    if (text_.compare(pos_, len, literal) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("bad literal");
      default: return parse_number();
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') return out;
      if (c == '\\') {
        const char esc = take();
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = take();
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape");
            }
            // Encode BMP code point as UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("bad escape");
        }
      } else {
        out += c;
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("bad number");
    try {
      return Json(std::stod(text_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      fail("bad number");
    }
  }

  Json parse_array() {
    expect('[');
    JsonArray items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(items));
    }
    while (true) {
      items.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') return Json(std::move(items));
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  Json parse_object() {
    expect('{');
    JsonObject members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(members));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members[std::move(key)] = parse_value();
      skip_ws();
      const char c = take();
      if (c == '}') return Json(std::move(members));
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool Json::as_bool() const {
  if (type_ != Type::kBool) fail("not a bool");
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::kNumber) fail("not a number");
  return number_;
}

std::int64_t Json::as_int() const {
  return static_cast<std::int64_t>(as_number());
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) fail("not a string");
  return string_;
}

const JsonArray& Json::as_array() const {
  if (type_ != Type::kArray) fail("not an array");
  return array_;
}

const JsonObject& Json::as_object() const {
  if (type_ != Type::kObject) fail("not an object");
  return object_;
}

const Json& Json::at(const std::string& key) const {
  const auto& object = as_object();
  const auto it = object.find(key);
  if (it == object.end()) fail("missing key " + key);
  return it->second;
}

bool Json::contains(const std::string& key) const {
  return type_ == Type::kObject && object_.count(key) > 0;
}

Json& Json::set(const std::string& key, Json value) {
  if (type_ != Type::kObject) fail("set on non-object");
  object_[key] = std::move(value);
  return *this;
}

Json& Json::push_back(Json value) {
  if (type_ != Type::kArray) fail("push_back on non-array");
  array_.push_back(std::move(value));
  return *this;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent < 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: encode_number(out, number_); break;
    case Type::kString: encode_string(out, string_); break;
    case Type::kArray: {
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i != 0) out += ',';
        newline(depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      if (!array_.empty()) newline(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      std::size_t i = 0;
      for (const auto& [key, value] : object_) {
        if (i++ != 0) out += ',';
        newline(depth + 1);
        encode_string(out, key);
        out += indent < 0 ? ":" : ": ";
        value.dump_to(out, indent, depth + 1);
      }
      if (!object_.empty()) newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

Json Json::parse(const std::string& text) { return Parser(text).parse(); }

}  // namespace memfp
