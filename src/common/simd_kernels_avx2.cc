// AVX2 lane: the width-generic kernel bodies instantiated at 256 bits
// (4 doubles / 8 floats). Compiled with -mavx2 -ffp-contract=off when the
// compiler supports it (see src/common/CMakeLists.txt); otherwise — or on a
// non-x86 target — the stub below reports the lane as unavailable. The
// flat-ensemble descent and the compress-store partition need AVX-512
// gathers/masks, so this lane leaves them to the callers' scalar fallbacks.
#include "common/simd_kernels.h"

#if defined(__AVX2__) && defined(__x86_64__)

#include <vector>

#include "common/simd_kernels_generic.h"

namespace memfp::simd {
namespace {

void gemm_bt_avx2(const float* a, const float* b, float* out, std::size_t m,
                  std::size_t k, std::size_t n) {
  thread_local std::vector<float> bt;
  bt.resize(k * n);
  generic::gemm_bt<8>(a, b, out, m, k, n, bt.data());
}

const KernelTable kAvx2Table = {
    Level::kAvx2,
    generic::hist_rowmajor,
    generic::hist_column,
    generic::hist_subtract<4>,
    generic::pair_sum,
    generic::gini_gain_scan<4>,
    /*partition=*/nullptr,
    generic::bin_transform<8>,
    generic::fixed_bins<4>,
    generic::gemm<8>,
    generic::gemm_at<8>,
    gemm_bt_avx2,
    /*flat_float_block=*/nullptr,
    /*flat_binned_block=*/nullptr,
};

}  // namespace

const KernelTable* avx2_table() { return &kAvx2Table; }

}  // namespace memfp::simd

#else  // !(__AVX2__ && __x86_64__)

namespace memfp::simd {
const KernelTable* avx2_table() { return nullptr; }
}  // namespace memfp::simd

#endif
