// Fixed-width and categorical histograms used by the fault analysis
// (Fig 4 / Fig 5 aggregations) and by monitoring dashboards.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace memfp {

/// Fixed-width histogram over [lo, hi); out-of-range values clamp to the
/// edge bins so totals are preserved.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value, double weight = 1.0);

  /// Bulk add: equivalent to add(v, weight) for each value in order (bin
  /// indices come from the vectorized fixed_bins kernel; the count and
  /// total accumulations stay in element order, so the result is
  /// bit-identical to the per-element loop at every dispatch level).
  void add_range(std::span<const double> values, double weight = 1.0);

  std::size_t bins() const { return counts_.size(); }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;
  double count(std::size_t bin) const { return counts_[bin]; }
  double total() const { return total_; }
  /// Fraction of mass in the bin; 0 when the histogram is empty.
  double fraction(std::size_t bin) const;

 private:
  double lo_;
  double width_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

/// Ratio tracker keyed by a discrete category: counts trials and "hits"
/// (e.g. DIMMs per fault mode, and how many of them reached a UE).
class RatioByCategory {
 public:
  void add(const std::string& category, bool hit);

  /// hits/trials for the category; 0 when unseen.
  double rate(const std::string& category) const;
  std::uint64_t trials(const std::string& category) const;
  std::uint64_t hits(const std::string& category) const;
  std::vector<std::string> categories() const;

 private:
  struct Cell {
    std::uint64_t trials = 0;
    std::uint64_t hits = 0;
  };
  std::map<std::string, Cell> cells_;
};

}  // namespace memfp
