// Deterministic pseudo-random number generation.
//
// The simulator, the ML training loops and the benches all need reproducible
// randomness that is stable across platforms and standard-library versions,
// so we implement xoshiro256** (Blackman & Vigna) plus the distributions the
// project needs instead of relying on <random>'s unspecified algorithms.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace memfp {

/// xoshiro256** 1.0 — fast, high-quality 64-bit PRNG with splitmix64 seeding.
/// Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t uniform_u64(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p);

  /// Standard normal via Marsaglia polar method.
  double normal();
  double normal(double mean, double stddev);

  /// Exponential with given rate (mean 1/rate). Precondition: rate > 0.
  double exponential(double rate);

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 64).
  std::uint64_t poisson(double mean);

  /// Geometric: number of failures before first success, p in (0, 1].
  std::uint64_t geometric(double p);

  /// Log-normal with the given underlying normal parameters.
  double lognormal(double mu, double sigma);

  /// Samples an index from unnormalized non-negative weights.
  /// Precondition: weights non-empty with a positive sum.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_u64(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator (for per-entity streams).
  /// Advances this generator by one draw.
  Rng fork();

  /// Derives the `index`-th child stream WITHOUT advancing this generator.
  /// Pure function of (current state, index), so parallel tasks can fork by
  /// task index in any order — or concurrently — and every thread count
  /// produces the same child streams.
  Rng fork(std::uint64_t index) const;

 private:
  std::array<std::uint64_t, 4> state_;
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace memfp
