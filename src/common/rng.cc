#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace memfp {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_u64(std::uint64_t n) {
  MEMFP_DCHECK(n > 0);  // hot per-draw path: debug-only
  // Lemire's nearly-divisionless method with rejection for exact uniformity.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = -n % n;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  MEMFP_DCHECK(lo <= hi);  // hot per-draw path: debug-only
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_u64(span));
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::exponential(double rate) {
  MEMFP_CHECK_GT(rate, 0.0);
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

std::uint64_t Rng::poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean > 64.0) {
    // Normal approximation with continuity correction; adequate for the
    // high-intensity CE-storm regime where exact Poisson shape is immaterial.
    const double x = normal(mean, std::sqrt(mean));
    return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
  }
  const double limit = std::exp(-mean);
  std::uint64_t k = 0;
  double product = uniform();
  while (product > limit) {
    ++k;
    product *= uniform();
  }
  return k;
}

std::uint64_t Rng::geometric(double p) {
  MEMFP_CHECK(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return static_cast<std::uint64_t>(std::log(u) / std::log1p(-p));
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  MEMFP_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w;
  MEMFP_CHECK_GT(total, 0.0) << "weights must have a positive sum";
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::fork() {
  return Rng(next() ^ 0xd2b74407b1ce6e93ULL);
}

Rng Rng::fork(std::uint64_t index) const {
  // Mix all 256 bits of parent state with the index through splitmix64 so
  // children of adjacent indices (and of distinct parents) are decorrelated.
  std::uint64_t s = index ^ 0xa0761d6478bd642fULL;
  std::uint64_t seed = splitmix64(s);
  for (const std::uint64_t word : state_) {
    s ^= word;
    seed ^= splitmix64(s);
  }
  return Rng(seed);
}

}  // namespace memfp
