// CSV reading/writing for dataset export and bench output.
//
// Supports RFC-4180 quoting on write; the reader handles quoted fields with
// embedded separators/quotes, which is all the project's own files use.
#pragma once

#include <string>
#include <vector>

namespace memfp {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  std::size_t rows() const { return rows_.size(); }

  std::string to_string() const;
  /// Writes to the given path; throws std::runtime_error on IO failure.
  void save(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Column index by name; throws std::out_of_range when missing.
  std::size_t column(const std::string& name) const;
};

/// Parses CSV text (first line is the header).
/// Throws std::runtime_error on malformed quoting or ragged rows.
CsvTable parse_csv(const std::string& text);

/// Loads and parses a CSV file; throws std::runtime_error on IO failure.
CsvTable load_csv(const std::string& path);

}  // namespace memfp
