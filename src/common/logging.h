// Minimal leveled logger for library diagnostics.
//
// Defaults to Warning so tests and benches stay quiet; examples raise the
// level to Info to narrate their progress. Thread-safe: the level is atomic
// and records are composed per-call then written under a sink mutex, so
// thread-pool tasks (fleet simulation, parallel scoring) can log freely
// without interleaving partial lines.
#pragma once

#include <sstream>
#include <string>

namespace memfp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global threshold; records below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_line(LogLevel level, const std::string& message);

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, stream_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

#define MEMFP_LOG(level)                                \
  if (static_cast<int>(level) < static_cast<int>(::memfp::log_level())) { \
  } else                                                \
    ::memfp::detail::LogMessage(level)

#define MEMFP_DEBUG MEMFP_LOG(::memfp::LogLevel::kDebug)
#define MEMFP_INFO MEMFP_LOG(::memfp::LogLevel::kInfo)
#define MEMFP_WARN MEMFP_LOG(::memfp::LogLevel::kWarning)
#define MEMFP_ERROR MEMFP_LOG(::memfp::LogLevel::kError)

}  // namespace memfp
