// ASCII table renderer for bench/report output: prints the same row/column
// layout as the paper's tables and figure panels.
#pragma once

#include <string>
#include <vector>

namespace memfp {

class TextTable {
 public:
  explicit TextTable(std::string title = "");

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);
  /// Inserts a horizontal rule before the next row.
  void add_rule();

  std::string render() const;

 private:
  struct Row {
    bool rule = false;
    std::vector<std::string> cells;
  };
  std::string title_;
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace memfp
