// Runtime-dispatched SIMD kernels behind the repo's scalar contracts (see
// DESIGN.md "SIMD kernels & dispatch").
//
// The hot inner loops — flat-ensemble block descent, binned histogram
// builds, the uint8 bin transform, dense gemm — are branch-light SoA loops
// whose results are pinned by golden-hash determinism tests. This header
// gives them explicitly vectorized implementations without giving up those
// contracts:
//
//  * KernelTable: one function pointer per kernel. Callers fetch the active
//    table once per operation (`simd::kernels()`, a single relaxed atomic
//    load) and call through it; every table entry honours the *same*
//    bit-exactness contract as the scalar reference lane, so dispatch level
//    is unobservable in results (MEMFP_SIMD=scalar ≡ auto, bit for bit,
//    wherever the contract is exact — see the per-entry comments).
//  * One table per architecture lane, each compiled in its own translation
//    unit with that lane's -m flags (and -ffp-contract=off, so no fused
//    multiply-adds sneak in where the scalar lane has separate mul + add):
//    scalar (portable reference), AVX2, AVX-512, NEON. Lanes whose flags the
//    compiler lacks, or that target another architecture, compile to a stub
//    that reports "not available".
//  * A one-time runtime dispatcher picks the best table the *host CPU*
//    supports (CPUID via __builtin_cpu_supports), overridable with
//    MEMFP_SIMD={auto,avx512,avx2,neon,scalar}. Unrecognized or
//    host-unsupported values fall back to the scalar reference lane rather
//    than crash on an illegal instruction.
//  * Vec<T, N>: a fixed-width vector wrapper over GCC/Clang vector
//    extensions, used by the shared generic kernel bodies
//    (simd_kernels_generic.h) that the AVX2/AVX-512/NEON lanes instantiate
//    at their native widths. Only the per-lane kernel TUs may do arithmetic
//    with these types (their instruction selection follows the including
//    TU's -m flags); everything else treats this header as the dispatch API.
//
// Raw <immintrin.h>/<arm_neon.h> use anywhere outside src/common/simd* is
// rejected by memfp-lint (rule arch-intrinsics): every architecture-aware
// loop lives behind this one dispatch seam.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace memfp::simd {

/// Dispatch lanes, ordered by preference within an architecture. kScalar is
/// always available and is the reference lane every other lane must match.
enum class Level : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2, kNeon = 3 };

/// Stable lowercase name ("scalar", "avx2", "avx512", "neon") — the values
/// MEMFP_SIMD accepts, and what benches/tests print.
const char* level_name(Level level);

/// Parses a MEMFP_SIMD value ("auto" excluded); returns false on unknown.
bool parse_level(const char* name, Level* out);

/// Array-padding granularity of KernelTable::gini_gain_scan (the widest
/// lane's double count). Callers round the candidate arrays up to this many
/// slots and zero the input pads.
inline constexpr int kGainScanPad = 8;

// ---------------------------------------------------------------------------
// Fixed-width vector wrapper (compiler vector extensions).
// ---------------------------------------------------------------------------

/// `Vec<double, 8>::type` is a 512-bit vector of 8 doubles. Element access
/// is `v[i]`; arithmetic/comparison operators are elementwise; `m ? a : b`
/// is a lane select on an integer mask vector of matching shape.
template <class T, int N>
struct Vec {
  static_assert(N > 0 && (N & (N - 1)) == 0, "vector lanes must be a power of two");
  typedef T type __attribute__((vector_size(sizeof(T) * N)));
};

template <class T, int N>
using VecT = typename Vec<T, N>::type;

/// Unaligned load/store: vectors alias arbitrary element buffers.
template <class V>
inline V vload(const void* p) {
  V v;
  __builtin_memcpy(&v, p, sizeof(V));
  return v;
}

template <class V>
inline void vstore(void* p, V v) {
  __builtin_memcpy(p, &v, sizeof(V));
}

/// Broadcast: every lane = x (vector + scalar is elementwise broadcast).
template <class V, class T>
inline V vsplat(T x) {
  return V{} + x;
}

// ---------------------------------------------------------------------------
// The kernel table.
// ---------------------------------------------------------------------------

/// One function pointer per vectorized kernel. All entries are non-null in
/// every table except the entries marked "Nullable" (the flat-ensemble
/// block kernels and partition, which need AVX-512 gathers/compress-stores
/// to beat scalar); their callers keep a scalar fallback.
///
/// Bit-exactness contracts (each entry must match the scalar lane exactly):
///  * histogram / pair-sum entries: per-accumulator adds happen in row
///    order; a (wide) two-lane add is two independent IEEE adds, so the
///    (a, b) interleaved pairs are bit-identical to two scalar chains.
///  * gini_gain_scan: per-lane IEEE op order replicates the scalar
///    expression `((2.0 * p) * (1.0 - p)) * total` and `(parent - l) - r`;
///    invalid candidates get -inf so the caller's strict `>` argmax (first
///    maximum wins) is unchanged. This is the one kernel DESIGN.md's ulp
///    policy covers: lanes may reassociate only up to the documented ulp
///    budget, and today's lanes spend none of it.
///  * partition / bin_transform / flat descent: integer or comparison
///    results only — exact by construction.
///  * gemm entries: per-output-element multiply/add order is the scalar
///    kernel's; lanes are compiled with -ffp-contract=off so no FMA fuses
///    what the scalar lane keeps separate.
struct KernelTable {
  Level level;

  /// Classification histogram over row-major codes: for slice row r (in
  /// order), hist[2 * (offset[f] + row_codes[r * features + f])] += wp[2r]
  /// and the +1 slot += wp[2r + 1], for every feature f.
  void (*hist_rowmajor)(const std::uint32_t* rows, std::size_t n,
                        const double* wp, const std::uint8_t* row_codes,
                        std::size_t features, double* hist,
                        const std::uint32_t* offset);

  /// Gradient histogram over one feature-major code column:
  /// hist[2 * codes[r]] += gh[2r], hist[2 * codes[r] + 1] += gh[2r + 1].
  void (*hist_column)(const std::uint32_t* rows, std::size_t n,
                      const double* gh, const std::uint8_t* codes,
                      double* hist);

  /// out[i] = parent[i] - sibling[i] for i < n (histogram subtraction).
  void (*hist_subtract)(double* out, const double* parent,
                        const double* sibling, std::size_t n);

  /// (a, b) = row-order sums of the interleaved pairs wp[2r], wp[2r + 1].
  void (*pair_sum)(const std::uint32_t* rows, std::size_t n, const double* wp,
                   double* a, double* b);

  /// Weighted-gini split gains for `count` candidate bins from the left
  /// prefix sums (left_total[b], left_pos[b]); candidates failing
  /// min_samples_leaf get -inf. All three arrays must extend to `count`
  /// rounded up to kGainScanPad slots, with the input pads zeroed: lanes
  /// run full-width vectors over the pad instead of a scalar tail (zeros
  /// divide safely and cannot denormal-stall), and may scribble on
  /// gains[count..pad) — callers read only the first `count` gains.
  void (*gini_gain_scan)(const double* left_total, const double* left_pos,
                         int count, double total, double pos,
                         double parent_impurity, double min_samples_leaf,
                         double* gains);

  /// Nullable. Stable two-way partition of rows[0, n) by codes[r] <= bin;
  /// returns the left count. scratch holds n slots. guard is the number of
  /// bytes readable from `codes`: lanes that gather 4 bytes per uint8 code
  /// classify any step containing a row with r + 4 > guard scalar in place
  /// (row values need no ordering), so no gather reads past the buffer.
  std::size_t (*partition)(std::uint32_t* rows, std::size_t n,
                           const std::uint8_t* codes, std::uint8_t bin,
                           std::uint32_t* scratch, std::size_t guard);

  /// codes[i] = number of thresholds < column[i] (thresholds ascending) —
  /// BinMapper::bin's lower-bound index, NaN included (count 0).
  void (*bin_transform)(const float* column, std::size_t n,
                        const float* thresholds, int count,
                        std::uint8_t* codes);

  /// Fixed-width histogram bin indices with Histogram::add's exact edge
  /// clamping: out[i] = values[i] > lo ? min((values[i] - lo) / width,
  /// bins - 1) : 0.
  void (*fixed_bins)(const double* values, std::size_t n, double lo,
                     double width, std::size_t bins, std::uint32_t* out);

  /// out[m x n] += a[m x k] * b[k x n], row-major, ikj order.
  void (*gemm)(const float* a, const float* b, float* out, std::size_t m,
               std::size_t k, std::size_t n);
  /// out[m x n] += a^T[m x k] * b[k x n] with a stored k x m.
  void (*gemm_at)(const float* a, const float* b, float* out, std::size_t m,
                  std::size_t k, std::size_t n);
  /// out[m x n] += a[m x k] * b^T[k x n] with b stored n x k. Each output
  /// element keeps its own sequential accumulation over k, added into out
  /// at the end — the scalar kernel's exact shape.
  void (*gemm_bt)(const float* a, const float* b, float* out, std::size_t m,
                  std::size_t k, std::size_t n);

  /// Nullable. Scores one full 64-row block of float rows against packed
  /// flat-ensemble nodes (see FlatEnsemble's packed layout: threshold bits
  /// | feature << 32 | left-delta << 48 per uint64). x_block points at the
  /// block's first row, rows are contiguous with stride `cols`; out_block
  /// at the block's first output. Callers must pre-check the pack succeeded
  /// and fall back to the scalar block loop otherwise.
  void (*flat_float_block)(const std::uint64_t* nodes, const double* values,
                           const std::int32_t* roots,
                           const std::int32_t* depths, std::size_t trees,
                           const float* x_block, std::size_t cols, double init,
                           bool accumulate, double* out_block);

  /// Nullable. Binned variant over a feature-major code matrix (codes[f *
  /// rows + r]); packed node low 32 bits hold the bin threshold instead of
  /// float bits. The caller must keep blocks whose 4-byte code gathers
  /// could cross the end of `codes` (the last rows of the last feature) on
  /// the scalar path.
  void (*flat_binned_block)(const std::uint64_t* nodes, const double* values,
                            const std::int32_t* roots,
                            const std::int32_t* depths, std::size_t trees,
                            const std::uint8_t* codes, std::size_t rows,
                            std::size_t base_row, double init, bool accumulate,
                            double* out_block);
};

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

/// The active kernel table: resolved once from the host CPU and MEMFP_SIMD
/// on first use, then a single relaxed atomic load. Fetch it once per
/// operation (not per inner-loop iteration) and call through it.
const KernelTable& kernels();

/// The active table's lane.
Level active_level();

/// The table for an explicit lane, or nullptr when the lane was not
/// compiled in or the host CPU lacks its instructions. table_for(kScalar)
/// never returns nullptr.
const KernelTable* table_for(Level level);

/// Every lane table_for() would accept on this host, kScalar first.
std::vector<Level> supported_levels();

/// Detected host CPU features, space-separated (e.g. "sse2 avx avx2
/// avx512f avx512dq avx512bw avx512vl") — recorded by bench context blocks
/// so perf trajectories say what hardware produced them.
std::string cpu_features();

/// Test/bench override: swaps the active table for a supported level and
/// restores the previous one on destruction. Not safe to overlap with
/// concurrently *running* kernels — switch between operations, as the
/// dispatch-equality tests do.
class ScopedLevel {
 public:
  explicit ScopedLevel(Level level);
  ~ScopedLevel();
  ScopedLevel(const ScopedLevel&) = delete;
  ScopedLevel& operator=(const ScopedLevel&) = delete;

 private:
  const KernelTable* prev_;
};

}  // namespace memfp::simd
