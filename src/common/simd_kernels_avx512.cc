// AVX-512 lane: generic bodies at 512 bits plus the three gather/mask
// kernels that need real intrinsics — the flat-ensemble block descents
// (float and binned) and the compress-store partition. Compiled with
// -mavx512f -mavx512dq -mavx512bw -mavx512vl -ffp-contract=off when the
// compiler supports them (src/common/CMakeLists.txt); the stub at the
// bottom reports the lane unavailable otherwise.
#include "common/simd_kernels.h"

#if defined(__AVX512F__) && defined(__AVX512DQ__) && defined(__AVX512BW__) && \
    defined(__AVX512VL__) && defined(__x86_64__)

#include <immintrin.h>

// GCC's unmasked gather intrinsics initialize their pass-through operand
// with itself (`__m512i __Y = __Y;`), tripping -Wmaybe-uninitialized at -O2
// even though the all-ones mask overwrites every lane. Silence it TU-wide.
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

#include <cstring>
#include <limits>
#include <vector>

#include "common/simd_kernels_generic.h"

namespace memfp::simd {
namespace {

void gemm_bt_avx512(const float* a, const float* b, float* out, std::size_t m,
                    std::size_t k, std::size_t n) {
  thread_local std::vector<float> bt;
  bt.resize(k * n);
  generic::gemm_bt<16>(a, b, out, m, k, n, bt.data());
}

/// Stable two-sided partition via compress-store, 16 rows per step. The
/// uint8 codes are fetched with 4-byte gathers, so a row r needs r + 4 <=
/// guard bytes readable from `codes`; any 16-row step whose max row trips
/// that (only possible for the dataset's last feature column, and only for
/// the top three row indices) is classified scalar in place, preserving
/// stability either way.
std::size_t partition_avx512(std::uint32_t* rows, std::size_t n,
                             const std::uint8_t* codes, std::uint8_t bin,
                             std::uint32_t* scratch, std::size_t guard) {
  std::size_t write = 0;
  std::size_t right = 0;
  std::size_t i = 0;
  const __m512i vbin = _mm512_set1_epi32(bin);
  const __m512i mask_ff = _mm512_set1_epi32(0xFF);
  for (; i + 16 <= n; i += 16) {
    const __m512i r = _mm512_loadu_si512(rows + i);
    if (static_cast<std::size_t>(_mm512_reduce_max_epu32(r)) + 4 > guard) {
      for (std::size_t j = i; j < i + 16; ++j) {
        const std::uint32_t row = rows[j];
        if (codes[row] <= bin) {
          rows[write++] = row;
        } else {
          scratch[right++] = row;
        }
      }
      continue;
    }
    const __m512i raw = _mm512_i32gather_epi32(r, codes, 1);
    const __m512i c = _mm512_and_si512(raw, mask_ff);
    const __mmask16 left = _mm512_cmple_epu32_mask(c, vbin);
    _mm512_mask_compressstoreu_epi32(rows + write, left, r);
    write += static_cast<std::size_t>(__builtin_popcount(left));
    _mm512_mask_compressstoreu_epi32(scratch + right,
                                     static_cast<__mmask16>(~left), r);
    right += static_cast<std::size_t>(
        __builtin_popcount(static_cast<std::uint16_t>(~left)));
  }
  for (; i < n; ++i) {
    const std::uint32_t r = rows[i];
    if (codes[r] <= bin) {
      rows[write++] = r;
    } else {
      scratch[right++] = r;
    }
  }
  std::memcpy(rows + write, scratch, right * sizeof(std::uint32_t));
  return write;
}

/// Issues the two 8-lane uint64 node-word gathers for every group before
/// any dependent unpack work: eight independent gathers in flight per tree
/// level is what hides the node-load latency (folding the gather into the
/// per-group unpack serializes them and costs ~2x).
inline void gather_node_halves(const __m512i idx[4], const std::uint64_t* nodes,
                               __m512i m0[4], __m512i m1[4]) {
  for (int g = 0; g < 4; ++g) {
    m0[g] = _mm512_i32gather_epi64(_mm512_castsi512_si256(idx[g]), nodes, 8);
    m1[g] = _mm512_i32gather_epi64(_mm512_extracti64x4_epi64(idx[g], 1),
                                   nodes, 8);
  }
}

/// Re-packs one group's gathered halves into 16-lane words: lo = the low 32
/// bits of each node (threshold bits or bin), hi = feature | delta << 16.
struct NodeWords {
  __m512i lo;
  __m512i hi;
};

inline NodeWords unpack_node_words(__m512i m0, __m512i m1) {
  NodeWords w;
  w.lo = _mm512_inserti64x4(
      _mm512_castsi256_si512(_mm512_cvtepi64_epi32(m0)),
      _mm512_cvtepi64_epi32(m1), 1);
  w.hi = _mm512_inserti64x4(
      _mm512_castsi256_si512(
          _mm512_cvtepi64_epi32(_mm512_srli_epi64(m0, 32))),
      _mm512_cvtepi64_epi32(_mm512_srli_epi64(m1, 32)), 1);
  return w;
}

/// 64 rows as 4 interleaved groups of 16 descent chains per tree level: the
/// 8 gathers of one level overlap instead of serializing into a dependent
/// load chain. Descent math is identical to the scalar block loop — next =
/// left + (!(x <= t) & (t < inf)), leaves self-loop — and the per-level
/// `moved` fold gives the same early exit, so leaf selection is exact.
void flat_float_block_avx512(const std::uint64_t* nodes, const double* values,
                             const std::int32_t* roots,
                             const std::int32_t* depths, std::size_t trees,
                             const float* x_block, std::size_t cols,
                             double init, bool accumulate, double* out_block) {
  const __m512 inf = _mm512_set1_ps(std::numeric_limits<float>::infinity());
  const __m512i one = _mm512_set1_epi32(1);
  const __m512i maskf = _mm512_set1_epi32(0xFFFF);
  alignas(64) std::int32_t rowoff[64];
  for (int i = 0; i < 64; ++i) {
    rowoff[i] = static_cast<std::int32_t>(static_cast<std::size_t>(i) * cols);
  }
  __m512i ro[4];
  __m512d acc[8];
  for (int g = 0; g < 4; ++g) ro[g] = _mm512_load_si512(rowoff + 16 * g);
  const __m512d acc0 = _mm512_set1_pd(accumulate ? 0.0 : init);
  for (int g = 0; g < 8; ++g) acc[g] = acc0;
  for (std::size_t t = 0; t < trees; ++t) {
    const std::int32_t depth = depths[t];
    __m512i idx[4];
    idx[0] = idx[1] = idx[2] = idx[3] = _mm512_set1_epi32(roots[t]);
    for (std::int32_t level = 0; level < depth; ++level) {
      __m512i m0[4], m1[4];
      gather_node_halves(idx, nodes, m0, m1);
      __mmask16 moved = 0;
      for (int g = 0; g < 4; ++g) {
        const NodeWords w = unpack_node_words(m0[g], m1[g]);
        const __m512 thr = _mm512_castsi512_ps(w.lo);
        const __m512i f = _mm512_and_si512(w.hi, maskf);
        const __m512i delta = _mm512_srli_epi32(w.hi, 16);
        const __m512 xv =
            _mm512_i32gather_ps(_mm512_add_epi32(ro[g], f), x_block, 4);
        // Right iff !(x <= t) and t < inf: _CMP_NLE_UQ sends NaN features
        // right (as the walker does) and the inf mask parks leaves.
        const __mmask16 m = _mm512_cmp_ps_mask(xv, thr, _CMP_NLE_UQ) &
                            _mm512_cmp_ps_mask(thr, inf, _CMP_LT_OQ);
        const __m512i left = _mm512_add_epi32(idx[g], delta);
        const __m512i next = _mm512_mask_add_epi32(left, m, left, one);
        moved |= _mm512_cmpneq_epi32_mask(next, idx[g]);
        idx[g] = next;
      }
      if (moved == 0) break;  // every chain parked on a leaf
    }
    for (int g = 0; g < 4; ++g) {
      acc[2 * g] = _mm512_add_pd(
          acc[2 * g],
          _mm512_i32gather_pd(_mm512_castsi512_si256(idx[g]), values, 8));
      acc[2 * g + 1] = _mm512_add_pd(
          acc[2 * g + 1],
          _mm512_i32gather_pd(_mm512_extracti64x4_epi64(idx[g], 1), values,
                              8));
    }
  }
  if (accumulate) {
    for (int g = 0; g < 8; ++g) {
      _mm512_storeu_pd(out_block + 8 * g,
                       _mm512_add_pd(_mm512_loadu_pd(out_block + 8 * g),
                                     acc[g]));
    }
  } else {
    for (int g = 0; g < 8; ++g) _mm512_storeu_pd(out_block + 8 * g, acc[g]);
  }
}

/// Binned descent: the packed node's low 32 bits hold the bin threshold
/// and a row goes right iff code > bin (leaf bin 255 can never be
/// exceeded by a uint8 code, so leaves stay parked). Code fetches are
/// 4-byte gathers from the feature-major uint8 matrix at f * rows + row;
/// the caller keeps any block whose gathers could cross the end of the
/// codes buffer on the scalar path.
void flat_binned_block_avx512(const std::uint64_t* nodes, const double* values,
                              const std::int32_t* roots,
                              const std::int32_t* depths, std::size_t trees,
                              const std::uint8_t* codes, std::size_t rows,
                              std::size_t base_row, double init,
                              bool accumulate, double* out_block) {
  const __m512i one = _mm512_set1_epi32(1);
  const __m512i maskf = _mm512_set1_epi32(0xFFFF);
  const __m512i mask_ff = _mm512_set1_epi32(0xFF);
  const __m512i vrows = _mm512_set1_epi32(static_cast<std::int32_t>(rows));
  alignas(64) std::int32_t rowidx[64];
  for (int i = 0; i < 64; ++i) {
    rowidx[i] = static_cast<std::int32_t>(base_row + static_cast<std::size_t>(i));
  }
  __m512i rv[4];
  __m512d acc[8];
  for (int g = 0; g < 4; ++g) rv[g] = _mm512_load_si512(rowidx + 16 * g);
  const __m512d acc0 = _mm512_set1_pd(accumulate ? 0.0 : init);
  for (int g = 0; g < 8; ++g) acc[g] = acc0;
  for (std::size_t t = 0; t < trees; ++t) {
    const std::int32_t depth = depths[t];
    __m512i idx[4];
    idx[0] = idx[1] = idx[2] = idx[3] = _mm512_set1_epi32(roots[t]);
    for (std::int32_t level = 0; level < depth; ++level) {
      __m512i m0[4], m1[4];
      gather_node_halves(idx, nodes, m0, m1);
      __mmask16 moved = 0;
      for (int g = 0; g < 4; ++g) {
        const NodeWords w = unpack_node_words(m0[g], m1[g]);
        const __m512i bin = w.lo;
        const __m512i f = _mm512_and_si512(w.hi, maskf);
        const __m512i delta = _mm512_srli_epi32(w.hi, 16);
        const __m512i coff =
            _mm512_add_epi32(_mm512_mullo_epi32(f, vrows), rv[g]);
        const __m512i code =
            _mm512_and_si512(_mm512_i32gather_epi32(coff, codes, 1), mask_ff);
        const __mmask16 m = _mm512_cmpgt_epi32_mask(code, bin);
        const __m512i left = _mm512_add_epi32(idx[g], delta);
        const __m512i next = _mm512_mask_add_epi32(left, m, left, one);
        moved |= _mm512_cmpneq_epi32_mask(next, idx[g]);
        idx[g] = next;
      }
      if (moved == 0) break;
    }
    for (int g = 0; g < 4; ++g) {
      acc[2 * g] = _mm512_add_pd(
          acc[2 * g],
          _mm512_i32gather_pd(_mm512_castsi512_si256(idx[g]), values, 8));
      acc[2 * g + 1] = _mm512_add_pd(
          acc[2 * g + 1],
          _mm512_i32gather_pd(_mm512_extracti64x4_epi64(idx[g], 1), values,
                              8));
    }
  }
  if (accumulate) {
    for (int g = 0; g < 8; ++g) {
      _mm512_storeu_pd(out_block + 8 * g,
                       _mm512_add_pd(_mm512_loadu_pd(out_block + 8 * g),
                                     acc[g]));
    }
  } else {
    for (int g = 0; g < 8; ++g) _mm512_storeu_pd(out_block + 8 * g, acc[g]);
  }
}

const KernelTable kAvx512Table = {
    Level::kAvx512,
    generic::hist_rowmajor,
    generic::hist_column,
    generic::hist_subtract<8>,
    generic::pair_sum,
    generic::gini_gain_scan<8>,
    partition_avx512,
    generic::bin_transform<16>,
    generic::fixed_bins<8>,
    generic::gemm<16>,
    generic::gemm_at<16>,
    gemm_bt_avx512,
    flat_float_block_avx512,
    flat_binned_block_avx512,
};

}  // namespace

const KernelTable* avx512_table() { return &kAvx512Table; }

}  // namespace memfp::simd

#else  // missing AVX-512 flags or not x86-64

namespace memfp::simd {
const KernelTable* avx512_table() { return nullptr; }
}  // namespace memfp::simd

#endif
