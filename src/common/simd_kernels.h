// Internal: per-architecture kernel table providers, one per translation
// unit (simd_kernels_<lane>.cc). Each returns a pointer to its lane's
// static KernelTable, or nullptr when that lane was not compiled in — the
// TU targets another architecture, or the compiler lacked its -m flags.
// Only simd.cc (the dispatcher) and the lane TUs include this.
#pragma once

#include "common/simd.h"

namespace memfp::simd {

const KernelTable* scalar_table();  // never nullptr
const KernelTable* avx2_table();
const KernelTable* avx512_table();
const KernelTable* neon_table();

}  // namespace memfp::simd
