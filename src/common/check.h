// Contract-check macros that survive release builds.
//
// `assert()` vanishes under NDEBUG (the default RelWithDebInfo build), which
// means the invariants it guards are unchecked exactly where the project runs
// its experiments. MEMFP_CHECK stays on in every build type, prints file:line
// plus the failed expression (and both operand values for the comparison
// forms), accepts streamed context, and aborts:
//
//   MEMFP_CHECK(!samples.empty()) << "extractor produced no samples";
//   MEMFP_CHECK_EQ(scores.size(), labels.size()) << "while computing AUC";
//
// MEMFP_DCHECK compiles to nothing in NDEBUG builds (the condition is not
// even evaluated) — use it for per-element assertions on hot paths where a
// branch per iteration would show up in the benches; use MEMFP_CHECK for API
// boundaries, preconditions and anything that runs at most once per call.
// See DESIGN.md "Static analysis & contracts" for the full guidance; the
// `bare-assert` lint rule keeps plain assert() out of src/.
#pragma once

#include <functional>
#include <memory>
#include <ostream>
#include <sstream>
#include <string>

namespace memfp::detail {

/// Composes the failure record and aborts the process in its destructor.
/// Created only on the failure path, so constructing the ostringstream is
/// free in the common case.
class CheckMessage {
 public:
  CheckMessage(const char* file, int line, const char* summary);
  CheckMessage(const CheckMessage&) = delete;
  CheckMessage& operator=(const CheckMessage&) = delete;
  /// Writes the record to stderr and calls abort(); never returns normally.
  ~CheckMessage();

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Failure description for the comparison checks: null on success, the
/// "a vs. b" rendering on failure. The bool conversion drives the `while`
/// in MEMFP_CHECK_OP below.
class CheckOpResult {
 public:
  CheckOpResult() = default;
  explicit CheckOpResult(std::string message)
      : message_(std::make_unique<std::string>(std::move(message))) {}
  explicit operator bool() const { return message_ != nullptr; }
  const std::string& message() const { return *message_; }

 private:
  std::unique_ptr<std::string> message_;
};

/// Streams `value` if the type supports it, a placeholder otherwise, so
/// MEMFP_CHECK_EQ works on types without operator<< (enum classes, structs).
template <typename T>
void stream_operand(std::ostream& os, const T& value) {
  if constexpr (requires(std::ostream& s, const T& v) { s << v; }) {
    os << value;
  } else {
    os << "<unprintable>";
  }
}

template <typename A, typename B, typename Op>
CheckOpResult check_op(const A& a, const B& b, Op op, const char* expression) {
  if (op(a, b)) return CheckOpResult();
  std::ostringstream os;
  os << "Check failed: " << expression << " (";
  stream_operand(os, a);
  os << " vs. ";
  stream_operand(os, b);
  os << ") ";
  return CheckOpResult(os.str());
}

}  // namespace memfp::detail

// The `while` makes the macros single-statement and dangling-else safe; the
// body constructs a CheckMessage whose destructor aborts, so the loop never
// iterates twice. The condition is evaluated exactly once.
#define MEMFP_CHECK(condition)                              \
  while (!(condition))                                      \
  ::memfp::detail::CheckMessage(__FILE__, __LINE__,              \
                                "Check failed: " #condition " ") \
      .stream()

#define MEMFP_CHECK_OP(op_functor, op_token, a, b)                \
  while (::memfp::detail::CheckOpResult memfp_check_result =      \
             ::memfp::detail::check_op((a), (b), op_functor<>(),  \
                                       #a " " #op_token " " #b))  \
  ::memfp::detail::CheckMessage(__FILE__, __LINE__,               \
                                memfp_check_result.message().c_str()) \
      .stream()

#define MEMFP_CHECK_EQ(a, b) MEMFP_CHECK_OP(std::equal_to, ==, a, b)
#define MEMFP_CHECK_NE(a, b) MEMFP_CHECK_OP(std::not_equal_to, !=, a, b)
#define MEMFP_CHECK_LT(a, b) MEMFP_CHECK_OP(std::less, <, a, b)
#define MEMFP_CHECK_LE(a, b) MEMFP_CHECK_OP(std::less_equal, <=, a, b)
#define MEMFP_CHECK_GT(a, b) MEMFP_CHECK_OP(std::greater, >, a, b)
#define MEMFP_CHECK_GE(a, b) MEMFP_CHECK_OP(std::greater_equal, >=, a, b)

// Debug-only: dead code (condition never evaluated at runtime) when NDEBUG
// is set, as in the default RelWithDebInfo build. The outer `while (false)`
// keeps the condition and any streamed operands type-checked and referenced
// in every build, so -Werror unused-variable diagnostics stay quiet.
#ifdef NDEBUG
#define MEMFP_DCHECK(condition) \
  while (false) MEMFP_CHECK(condition)
#define MEMFP_DCHECK_EQ(a, b) \
  while (false) MEMFP_CHECK_EQ(a, b)
#else
#define MEMFP_DCHECK(condition) MEMFP_CHECK(condition)
#define MEMFP_DCHECK_EQ(a, b) MEMFP_CHECK_EQ(a, b)
#endif
