// Internal: width-generic kernel bodies shared by the AVX2/AVX-512/NEON
// lane TUs. Every template here is instantiated at the including TU's
// native lane count and compiles to that TU's -m instruction set — nothing
// outside src/common/simd_kernels_*.cc may include this header (the
// vector-extension arithmetic would silently compile to baseline
// instructions, or trip -Wpsabi, in an unflagged TU).
//
// Exactness notes (the scalar lane in simd_kernels_scalar.cc is the
// reference for all of these):
//  * Pair kernels (pair_sum, hist_*) use one two-double vector add per
//    (a, b) pair: the two lanes are independent IEEE adds, so each
//    accumulator's chain is bit-identical to the scalar lane's, in the same
//    row order.
//  * gain_scan / gemm keep the scalar expression's per-element op order and
//    rely on the TU being compiled with -ffp-contract=off, so mul + add
//    never fuses into an FMA the scalar lane doesn't have.
//  * bin_transform / fixed_bins produce integers from comparisons — the
//    lane only changes how many elements are classified per iteration.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

#include "common/simd.h"

namespace memfp::simd::generic {

using f64x2 = VecT<double, 2>;

/// (a, b) += (wp[2r], wp[2r + 1]) in row order: one two-lane add chain.
inline void pair_sum(const std::uint32_t* rows, std::size_t n,
                     const double* wp, double* a, double* b) {
  f64x2 acc{};
  for (std::size_t i = 0; i < n; ++i) {
    acc += vload<f64x2>(wp + 2 * static_cast<std::size_t>(rows[i]));
  }
  *a = acc[0];
  *b = acc[1];
}

inline void pair_add(double* slot, f64x2 w) {
  vstore(slot, vload<f64x2>(slot) + w);
}

/// Row-major classification histogram: one wp pair load per row feeds every
/// feature's accumulator; per-(feature, bin) adds stay in row order because
/// each row's feature slots are disjoint.
inline void hist_rowmajor(const std::uint32_t* rows, std::size_t n,
                          const double* wp, const std::uint8_t* row_codes,
                          std::size_t features, double* hist,
                          const std::uint32_t* offset) {
  for (std::size_t i = 0; i < n; ++i) {
    // The row indices land a few cache lines apart (bootstrap subsets);
    // prefetching a later row's code run and weight pair hides the miss
    // behind the current row's accumulator chains.
    if (i + 4 < n) {
      const auto ahead = static_cast<std::size_t>(rows[i + 4]);
      __builtin_prefetch(row_codes + ahead * features);
      __builtin_prefetch(wp + 2 * ahead);
    }
    const auto r = static_cast<std::size_t>(rows[i]);
    const f64x2 w = vload<f64x2>(wp + 2 * r);
    const std::uint8_t* c = row_codes + r * features;
    std::size_t f = 0;
    // Four independent add/store chains per step hide the load-add-store
    // latency; the chains never alias (distinct features).
    for (; f + 4 <= features; f += 4) {
      pair_add(hist + 2 * (offset[f] + c[f]), w);
      pair_add(hist + 2 * (offset[f + 1] + c[f + 1]), w);
      pair_add(hist + 2 * (offset[f + 2] + c[f + 2]), w);
      pair_add(hist + 2 * (offset[f + 3] + c[f + 3]), w);
    }
    for (; f < features; ++f) {
      pair_add(hist + 2 * (offset[f] + c[f]), w);
    }
  }
}

/// One-column gradient histogram: hist[2 * codes[r]] += (gh[2r], gh[2r+1]).
inline void hist_column(const std::uint32_t* rows, std::size_t n,
                        const double* gh, const std::uint8_t* codes,
                        double* hist) {
  for (std::size_t i = 0; i < n; ++i) {
    const auto r = static_cast<std::size_t>(rows[i]);
    pair_add(hist + 2 * codes[r], vload<f64x2>(gh + 2 * r));
  }
}

template <int W>
void hist_subtract(double* out, const double* parent, const double* sibling,
                   std::size_t n) {
  using VD = VecT<double, W>;
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    vstore(out + i, vload<VD>(parent + i) - vload<VD>(sibling + i));
  }
  for (; i < n; ++i) out[i] = parent[i] - sibling[i];
}

/// Weighted-gini gains, W candidate bins per iteration. Per lane this is
/// exactly the scalar lane's expression tree: gini(p, t) = ((2*p)*(1-p))*t
/// guarded by t > 0, gain = (parent - gini_l) - gini_r, -inf when a side
/// fails min_samples_leaf. The division guard blends 1.0 into zero totals
/// so no lane divides by zero; its result is masked off.
template <int W>
void gini_gain_scan(const double* left_total, const double* left_pos,
                    int count, double total, double pos,
                    double parent_impurity, double min_samples_leaf,
                    double* gains) {
  using VD = VecT<double, W>;
  using VM = VecT<long long, W>;  // comparison result / lane-select mask
  const VD vtotal = vsplat<VD>(total);
  const VD vpos = vsplat<VD>(pos);
  const VD vmsl = vsplat<VD>(min_samples_leaf);
  const VD vparent = vsplat<VD>(parent_impurity);
  const VD one = vsplat<VD>(1.0);
  const VD two = vsplat<VD>(2.0);
  const VD zero{};
  const VD ninf = vsplat<VD>(-std::numeric_limits<double>::infinity());
  // Full-width vectors only: the caller pads the arrays to a multiple of
  // kGainScanPad slots (zeros past count), so the last block never needs a
  // scalar tail — with count = 47 (the default 48-bin mapper) a tail would
  // re-pay two divisions per straggler bin on every feature scan.
  for (int b = 0; b < count; b += W) {
    const VD lt = vload<VD>(left_total + b);
    const VD lp = vload<VD>(left_pos + b);
    const VD rt = vtotal - lt;
    const VD rp = vpos - lp;
    const VM ok = (lt >= vmsl) & (rt >= vmsl);
    const VM lpos_ok = lt > zero;
    const VM rpos_ok = rt > zero;
    const VD lt_safe = lpos_ok ? lt : one;
    const VD rt_safe = rpos_ok ? rt : one;
    const VD pl = lp / lt_safe;
    const VD pr = rp / rt_safe;
    const VD gil = lpos_ok ? ((two * pl) * (one - pl)) * lt : zero;
    const VD gir = rpos_ok ? ((two * pr) * (one - pr)) * rt : zero;
    const VD gain = (vparent - gil) - gir;
    vstore(gains + b, ok ? gain : ninf);
  }
}

/// codes[i] = #thresholds < column[i], counted W values at a time: each
/// ascending threshold contributes 0/1 per lane (vector compares are
/// 0 / -1, so subtracting accumulates the count). Equals the scalar
/// lower_bound index, NaN included (every compare false -> 0).
template <int W>
void bin_transform(const float* column, std::size_t n,
                   const float* thresholds, int count, std::uint8_t* codes) {
  using VF = VecT<float, W>;
  using VI = VecT<int, W>;
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    const VF v = vload<VF>(column + i);
    VI cnt{};
    for (int t = 0; t < count; ++t) {
      cnt -= (vsplat<VF>(thresholds[t]) < v);
    }
    for (int l = 0; l < W; ++l) {
      codes[i + static_cast<std::size_t>(l)] =
          static_cast<std::uint8_t>(cnt[l]);
    }
  }
  for (; i < n; ++i) {
    int cnt = 0;
    for (int t = 0; t < count; ++t) cnt += thresholds[t] < column[i];
    codes[i] = static_cast<std::uint8_t>(cnt);
  }
}

/// Fixed-width histogram bins. The clamp happens on the double side
/// (min(q, bins - 1) before truncation), matching Histogram::add and the
/// scalar lane exactly — +inf and beyond-2^63-widths values clamp to the
/// top bin — and keeping the vector double->int conversion in range.
template <int W>
void fixed_bins(const double* values, std::size_t n, double lo, double width,
                std::size_t bins, std::uint32_t* out) {
  using VD = VecT<double, W>;
  using VM = VecT<long long, W>;
  const VD vlo = vsplat<VD>(lo);
  const VD vwidth = vsplat<VD>(width);
  const VD vmax = vsplat<VD>(static_cast<double>(bins - 1));
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    const VD v = vload<VD>(values + i);
    VD q = (v - vlo) / vwidth;
    q = q > vmax ? vmax : q;
    const VM b = __builtin_convertvector(q, VM);
    const VM sel = (v > vlo) ? b : VM{};
    for (int l = 0; l < W; ++l) {
      out[i + static_cast<std::size_t>(l)] =
          static_cast<std::uint32_t>(sel[l]);
    }
  }
  for (; i < n; ++i) {
    std::uint32_t bin = 0;
    if (values[i] > lo) {
      double q = (values[i] - lo) / width;
      if (q > static_cast<double>(bins - 1)) q = static_cast<double>(bins - 1);
      bin = static_cast<std::uint32_t>(q);
    }
    out[i] = bin;
  }
}

/// out += a * b, ikj order, W output columns per step. Per element the op
/// sequence is load, mul, add, store for each p in order — the scalar
/// kernel's exact chain (no FMA: the TU is built with -ffp-contract=off).
template <int W>
void gemm(const float* a, const float* b, float* out, std::size_t m,
          std::size_t k, std::size_t n) {
  using VF = VecT<float, W>;
  for (std::size_t i = 0; i < m; ++i) {
    float* out_row = out + i * n;
    const float* a_row = a + i * k;
    for (std::size_t p = 0; p < k; ++p) {
      const float av = a_row[p];
      const float* b_row = b + p * n;
      const VF vav = vsplat<VF>(av);
      std::size_t j = 0;
      for (; j + W <= n; j += W) {
        vstore(out_row + j, vload<VF>(out_row + j) + vav * vload<VF>(b_row + j));
      }
      for (; j < n; ++j) out_row[j] += av * b_row[j];
    }
  }
}

/// out += a^T * b (a stored k x m): same inner update, pkj order.
template <int W>
void gemm_at(const float* a, const float* b, float* out, std::size_t m,
             std::size_t k, std::size_t n) {
  using VF = VecT<float, W>;
  for (std::size_t p = 0; p < k; ++p) {
    const float* a_row = a + p * m;
    const float* b_row = b + p * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float av = a_row[i];
      float* out_row = out + i * n;
      const VF vav = vsplat<VF>(av);
      std::size_t j = 0;
      for (; j + W <= n; j += W) {
        vstore(out_row + j, vload<VF>(out_row + j) + vav * vload<VF>(b_row + j));
      }
      for (; j < n; ++j) out_row[j] += av * b_row[j];
    }
  }
}

/// out += a * b^T (b stored n x k). b is transposed once into a scratch
/// (k x n) so the inner loop reads W contiguous columns; each output
/// element still accumulates its own dot product over p in order, starting
/// from 0.0f and added into out at the end — bit-identical to the scalar
/// kernel's four-accumulator shape.
template <int W>
void gemm_bt(const float* a, const float* b, float* out, std::size_t m,
             std::size_t k, std::size_t n, float* bt /* k * n scratch */) {
  using VF = VecT<float, W>;
  for (std::size_t j = 0; j < n; ++j) {
    const float* b_row = b + j * k;
    for (std::size_t p = 0; p < k; ++p) bt[p * n + j] = b_row[p];
  }
  for (std::size_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    float* out_row = out + i * n;
    std::size_t j = 0;
    for (; j + W <= n; j += W) {
      VF acc{};
      for (std::size_t p = 0; p < k; ++p) {
        acc += vsplat<VF>(a_row[p]) * vload<VF>(bt + p * n + j);
      }
      vstore(out_row + j, vload<VF>(out_row + j) + acc);
    }
    for (; j < n; ++j) {
      float acc = 0.0f;
      const float* b_row = b + j * k;
      for (std::size_t p = 0; p < k; ++p) acc += a_row[p] * b_row[p];
      out_row[j] += acc;
    }
  }
}

}  // namespace memfp::simd::generic
