// Small string helpers shared by the CSV/JSON codecs and report printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace memfp {

std::vector<std::string> split(std::string_view text, char sep);
std::string join(const std::vector<std::string>& parts, std::string_view sep);
std::string_view trim(std::string_view text);
bool starts_with(std::string_view text, std::string_view prefix);

/// Fixed-precision formatting (printf "%.*f").
std::string format_double(double value, int precision);

/// "12.3%" style percent formatting of a ratio in [0,1].
std::string format_percent(double ratio, int precision = 1);

}  // namespace memfp
