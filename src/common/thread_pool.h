// Deterministic work-stealing thread pool.
//
// The fleet simulator, the forest/GBDT trainers and the per-DIMM scorer are
// all embarrassingly parallel, but the project's reproducibility contract
// ("same seed => same Table II numbers") must survive parallelisation. The
// pool therefore guarantees that `parallel_for` / `parallel_reduce` results
// depend only on (n, grain), never on the number of threads or on scheduling:
//
//   * every index writes to its own output slot (caller's responsibility),
//   * chunk boundaries are a pure function of n and grain,
//   * `parallel_reduce` folds chunk partials in ascending chunk order on the
//     calling thread,
//   * per-task randomness comes from `Rng::fork(index)`, which derives a
//     child stream from the parent state and the task index without
//     advancing the parent.
//
// Scheduling is classic work-stealing: each worker owns a deque (LIFO for
// its own tasks, FIFO for thieves), and parallel sections are executed by
// "runner" tasks that pull chunk indices from a shared atomic cursor, so an
// idle worker automatically steals whatever chunks remain. The calling
// thread always participates as a runner, which makes nested parallel
// sections deadlock-free: a worker that opens an inner section drains it
// itself even when every other worker is busy.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

namespace memfp {

class ThreadPool {
 public:
  /// Creates a pool that runs parallel sections with `threads` executors
  /// (the calling thread plus `threads - 1` workers). `threads <= 0` means
  /// `default_threads()`. `default_width` caps how many executors a section
  /// uses when no ScopedLimit is active (<= 0 means all of them); the global
  /// pool uses it to keep spare workers for explicit above-core-count
  /// requests without oversubscribing by default.
  explicit ThreadPool(int threads = 0, int default_width = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Maximum number of executors (including the calling thread).
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// MEMFP_THREADS environment variable if set to a positive integer,
  /// otherwise std::thread::hardware_concurrency().
  static int default_threads();

  /// The process-wide pool, created on first use with default_threads().
  static ThreadPool& global();

  /// Process-wide cap on the width of parallel sections; 0 = uncapped.
  /// A cap of 1 makes every parallel section run inline on the calling
  /// thread (the serial fallback). Restores the previous cap on destruction.
  class ScopedLimit {
   public:
    /// `limit <= 0` leaves the current cap unchanged.
    explicit ScopedLimit(int limit);
    ~ScopedLimit();
    ScopedLimit(const ScopedLimit&) = delete;
    ScopedLimit& operator=(const ScopedLimit&) = delete;

   private:
    int previous_;
  };
  static int current_limit();

  /// Fire-and-forget task. Runs inline when the pool has no workers. The
  /// destructor drains all queued tasks before returning.
  void submit(std::function<void()> task);

  /// Calls body(i) for every i in [0, n). Blocks until all calls finished;
  /// rethrows the first exception a body threw. The iteration->chunk mapping
  /// depends only on n and grain (grain 0 = default_grain(n)), so any
  /// index-slotted output is identical for every thread count.
  template <typename Body>
  void parallel_for(std::size_t n, Body&& body, std::size_t grain = 0) {
    if (n == 0) return;
    const std::size_t g = grain > 0 ? grain : default_grain(n);
    const std::size_t chunks = (n + g - 1) / g;
    run_chunked(chunks, [&](std::size_t c) {
      const std::size_t begin = c * g;
      const std::size_t end = begin + g < n ? begin + g : n;
      for (std::size_t i = begin; i < end; ++i) body(i);
    });
  }

  /// Chunk-granular variant of `parallel_for`: calls body(begin, end) once
  /// per chunk instead of once per index. Chunk boundaries depend only on
  /// (n, grain), so index->chunk assignment is identical for every thread
  /// count; callers use this to reuse a scratch buffer across all indices of
  /// a chunk instead of allocating per index (e.g. the per-feature column
  /// gather in BinMapper).
  template <typename Body>
  void parallel_for_chunks(std::size_t n, Body&& body, std::size_t grain = 0) {
    if (n == 0) return;
    const std::size_t g = grain > 0 ? grain : default_grain(n);
    const std::size_t chunks = (n + g - 1) / g;
    run_chunked(chunks, [&](std::size_t c) {
      const std::size_t begin = c * g;
      const std::size_t end = begin + g < n ? begin + g : n;
      body(begin, end);
    });
  }

  /// Ordered map-reduce: map(begin, end) produces one partial per chunk and
  /// the partials are folded as acc = reduce(acc, partial) in ascending
  /// chunk order on the calling thread. Because chunking depends only on
  /// (n, grain), the result is bit-identical for every thread count — even
  /// for non-associative reductions (floating-point sums, concatenation).
  template <typename T, typename MapFn, typename ReduceFn>
  T parallel_reduce(std::size_t n, T init, MapFn&& map, ReduceFn&& reduce,
                    std::size_t grain = 0) {
    if (n == 0) return init;
    const std::size_t g = grain > 0 ? grain : default_grain(n);
    const std::size_t chunks = (n + g - 1) / g;
    std::vector<T> partials(chunks);
    run_chunked(chunks, [&](std::size_t c) {
      const std::size_t begin = c * g;
      const std::size_t end = begin + g < n ? begin + g : n;
      partials[c] = map(begin, end);
    });
    T acc = std::move(init);
    for (std::size_t c = 0; c < chunks; ++c) {
      acc = reduce(std::move(acc), std::move(partials[c]));
    }
    return acc;
  }

  /// Default chunk size: a pure function of n (NOT of the thread count, so
  /// reductions stay deterministic). Caps the chunk count at 64.
  static std::size_t default_grain(std::size_t n) {
    return n / 64 > 0 ? n / 64 + (n % 64 != 0) : 1;
  }

 private:
  struct Impl;
  struct WorkerQueue;

  /// Executes body(c) for every chunk c in [0, chunks): inline when the
  /// effective width is 1, otherwise via width-1 stealing runner tasks plus
  /// the calling thread. Rethrows the first exception.
  void run_chunked(std::size_t chunks,
                   const std::function<void(std::size_t)>& body);

  void worker_loop(int index);
  bool try_run_one(int self_index);

  std::unique_ptr<Impl> impl_;
  int default_width_;
  std::vector<std::thread> workers_;
};

}  // namespace memfp
