#include "common/check.h"

#include <cstdlib>
#include <iostream>

namespace memfp::detail {

CheckMessage::CheckMessage(const char* file, int line, const char* summary) {
  // Strip the build-tree prefix: the basename is enough to locate the check
  // and keeps the record stable across build directories.
  const char* basename = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') basename = p + 1;
  }
  stream_ << basename << ":" << line << ": " << summary;
}

CheckMessage::~CheckMessage() {
  const std::string record = stream_.str();
  // Single write so concurrent failures from pool workers don't interleave.
  std::cerr << record << std::endl;
  std::abort();
}

}  // namespace memfp::detail
