#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace memfp {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double total = 0.0;
  for (double v : values) total += v;
  return total / static_cast<double>(values.size());
}

double stddev(const std::vector<double>& values) {
  RunningStats stats;
  for (double v : values) stats.add(v);
  return stats.stddev();
}

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double population_stability_index(const std::vector<double>& expected,
                                  const std::vector<double>& actual,
                                  std::size_t bins) {
  if (expected.empty() || actual.empty() || bins == 0) return 0.0;
  double lo = expected.front(), hi = expected.front();
  for (double v : expected) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  for (double v : actual) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (hi <= lo) return 0.0;
  const double width = (hi - lo) / static_cast<double>(bins);
  std::vector<double> pe(bins, 0.0), pa(bins, 0.0);
  auto bin_of = [&](double v) {
    auto b = static_cast<std::size_t>((v - lo) / width);
    return std::min(b, bins - 1);
  };
  for (double v : expected) pe[bin_of(v)] += 1.0;
  for (double v : actual) pa[bin_of(v)] += 1.0;
  // Laplace smoothing keeps empty bins from producing infinities.
  const double ne = static_cast<double>(expected.size()) +
                    static_cast<double>(bins) * 1e-4;
  const double na = static_cast<double>(actual.size()) +
                    static_cast<double>(bins) * 1e-4;
  double psi = 0.0;
  for (std::size_t b = 0; b < bins; ++b) {
    const double e = (pe[b] + 1e-4) / ne;
    const double a = (pa[b] + 1e-4) / na;
    psi += (a - e) * std::log(a / e);
  }
  return psi;
}

}  // namespace memfp
