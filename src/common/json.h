// Minimal JSON value model, writer and parser.
//
// Used by the MLOps model registry and feature-store catalogs for durable
// metadata, and by model serialization. Covers the full JSON grammar except
// \uXXXX escapes beyond the BMP (sufficient: we only serialize ASCII keys
// and numbers).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace memfp {

class Json;
using JsonArray = std::vector<Json>;
using JsonObject = std::map<std::string, Json>;

/// Immutable-ish JSON value (null, bool, number, string, array, object).
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double n) : type_(Type::kNumber), number_(n) {}
  Json(int n) : type_(Type::kNumber), number_(n) {}
  Json(std::int64_t n) : type_(Type::kNumber), number_(static_cast<double>(n)) {}
  Json(std::size_t n) : type_(Type::kNumber), number_(static_cast<double>(n)) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Json(JsonArray a) : type_(Type::kArray), array_(std::move(a)) {}
  Json(JsonObject o) : type_(Type::kObject), object_(std::move(o)) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }

  /// Typed accessors; throw std::runtime_error on type mismatch.
  bool as_bool() const;
  double as_number() const;
  std::int64_t as_int() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;

  /// Object member access; throws when not an object or key missing.
  const Json& at(const std::string& key) const;
  bool contains(const std::string& key) const;

  /// Mutable object/array builders.
  Json& set(const std::string& key, Json value);
  Json& push_back(Json value);

  /// Serializes; `indent` < 0 means compact single-line output.
  std::string dump(int indent = -1) const;

  static Json parse(const std::string& text);

  static Json array() { return Json(JsonArray{}); }
  static Json object() { return Json(JsonObject{}); }

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  JsonArray array_;
  JsonObject object_;
};

}  // namespace memfp
