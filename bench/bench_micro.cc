// Micro-benchmarks (google-benchmark) of the substrate hot paths: ECC
// classification, fault pattern sampling, DIMM simulation, feature
// extraction, tree/GBDT training and inference, and the autodiff forward
// pass.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <string>

#include "bench_common.h"
#include "common/json.h"
#include "common/simd.h"
#include "common/thread_pool.h"
#include "core/pipeline.h"
#include "dram/ecc.h"
#include "dram/fault.h"
#include "features/extractor.h"
#include "ml/autodiff.h"
#include "ml/gbdt.h"
#include "ml/random_forest.h"
#include "sim/dimm_sim.h"
#include "sim/fleet.h"

namespace {

using namespace memfp;

const dram::Geometry kGeometry = dram::Geometry::ddr4_x4();

dram::Fault bench_fault() {
  dram::Fault fault;
  fault.mode = dram::FaultMode::kRow;
  fault.scope = dram::DeviceScope::kSingleDevice;
  fault.anchor = {0, 3, 5, 12345, 321};
  fault.devices = {3};
  fault.escalating = true;
  return fault;
}

void BM_EccClassify(benchmark::State& state) {
  const auto ecc = dram::make_platform_ecc(dram::Platform::kIntelPurley);
  const dram::FaultPatternModel model(dram::Platform::kIntelPurley, kGeometry);
  Rng rng(1);
  std::vector<dram::ErrorPattern> patterns;
  for (int i = 0; i < 256; ++i) {
    patterns.push_back(model.sample(bench_fault(), 0.9, rng));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ecc->classify(patterns[i++ % patterns.size()], kGeometry));
  }
}
BENCHMARK(BM_EccClassify);

void BM_FaultPatternSample(benchmark::State& state) {
  const dram::FaultPatternModel model(dram::Platform::kIntelWhitley,
                                      kGeometry);
  dram::Fault fault = bench_fault();
  fault.scope = dram::DeviceScope::kMultiDevice;
  fault.devices = {3, 9};
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.sample(fault, 0.8, rng));
  }
}
BENCHMARK(BM_FaultPatternSample);

void BM_DimmSimulation(benchmark::State& state) {
  sim::DimmSimParams params;
  params.horizon = days(90);
  const sim::DimmSimulator simulator(dram::Platform::kIntelPurley, params);
  dram::Fault fault = bench_fault();
  fault.escalating = false;
  fault.ce_rate_per_hour = 0.5;
  Rng rng(3);
  for (auto _ : state) {
    Rng run_rng = rng.fork();
    benchmark::DoNotOptimize(
        simulator.run(0, 0, dram::DimmConfig{}, {fault}, run_rng));
  }
}
BENCHMARK(BM_DimmSimulation);

const sim::FleetTrace& feature_fleet() {
  static const sim::FleetTrace fleet =
      sim::simulate_fleet(sim::purley_scenario().scaled(0.02));
  return fleet;
}

void BM_FeatureExtractionPerDimm(benchmark::State& state) {
  const features::FeatureExtractor extractor;
  const sim::FleetTrace& fleet = feature_fleet();
  std::size_t i = 0;
  for (auto _ : state) {
    const sim::DimmTrace& dimm = fleet.dimms[i++ % fleet.dimms.size()];
    benchmark::DoNotOptimize(extractor.extract(dimm, fleet.horizon));
  }
}
BENCHMARK(BM_FeatureExtractionPerDimm);

// Storm-heavy single-DIMM trace: CE bursts (with storm events) over a long
// horizon, so the observation window holds thousands of CEs for most ticks.
// This is the worst case for per-tick window rescans and the headline
// workload of BENCH_extract.json.
sim::DimmTrace storm_trace(std::uint64_t seed, int storms, int ces_per_storm,
                           SimTime horizon) {
  Rng rng(seed);
  sim::DimmTrace trace;
  trace.id = 11;
  std::vector<dram::CeEvent> ces;
  for (int s = 0; s < storms; ++s) {
    const SimTime start = rng.uniform_u64(static_cast<std::uint64_t>(horizon));
    dram::MemEvent storm;
    storm.time = start;
    storm.type = dram::MemEventType::kCeStorm;
    trace.events.push_back(storm);
    for (int i = 0; i < ces_per_storm; ++i) {
      dram::CeEvent ce;
      ce.time = start + static_cast<SimTime>(rng.uniform_u64(hours(2)));
      ce.coord = {static_cast<int>(rng.uniform_u64(2)),
                  static_cast<int>(rng.uniform_u64(18)),
                  static_cast<int>(rng.uniform_u64(16)),
                  static_cast<int>(rng.uniform_u64(1 << 17)),
                  static_cast<int>(rng.uniform_u64(1 << 10))};
      const int dq = static_cast<int>(rng.uniform_u64(72));
      ce.pattern.add({static_cast<std::uint8_t>(dq),
                      static_cast<std::uint8_t>(rng.uniform_u64(8))});
      if (rng.bernoulli(0.3)) {
        ce.pattern.add({static_cast<std::uint8_t>((dq + 4) % 72),
                        static_cast<std::uint8_t>(rng.uniform_u64(8))});
      }
      ces.push_back(ce);
    }
  }
  std::sort(ces.begin(), ces.end(),
            [](const dram::CeEvent& a, const dram::CeEvent& b) {
              return a.time < b.time;
            });
  std::sort(trace.events.begin(), trace.events.end(),
            [](const dram::MemEvent& a, const dram::MemEvent& b) {
              return a.time < b.time;
            });
  trace.ces = std::move(ces);
  return trace;
}

// Batch extraction over a storm-heavy 5k-tick trace (hourly cadence). The
// BENCH_extract.json speedup row compares this against the pre-incremental
// extractor, which rescanned the full observation window every tick.
void BM_Extract(benchmark::State& state) {
  features::PredictionWindows windows;
  windows.cadence = kHour;
  const SimTime horizon = hours(5000);
  const features::FeatureExtractor extractor(windows);
  const sim::DimmTrace trace = storm_trace(41, 40, 250, horizon - days(6));
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.extract(trace, horizon));
  }
}
BENCHMARK(BM_Extract)->Unit(benchmark::kMillisecond);

// Repeated per-DIMM online scoring: one DIMM's features served at 200
// successive timestamps, the access pattern of OnlinePredictionService::
// run_over and of threshold sweeps. Uses the streaming serving path (one
// persistent OnlineExtractorState, telemetry fed as it arrives) — the
// BENCH_extract.json speedup row compares this against the pre-incremental
// features_at, which deep-copied the trace and rebuilt an extractor per call.
void BM_FeaturesAt(benchmark::State& state) {
  const features::FeatureExtractor extractor;
  const SimTime horizon = hours(5000);
  const sim::DimmTrace trace = storm_trace(43, 40, 100, horizon - days(6));
  std::vector<float> features;
  for (auto _ : state) {
    features::OnlineExtractorState stream =
        extractor.open_stream(trace.config, trace.workload);
    std::size_t next_ce = 0;
    std::size_t next_event = 0;
    for (SimTime t = hours(24); t <= horizon; t += hours(25)) {
      while (next_ce < trace.ces.size() && trace.ces[next_ce].time <= t) {
        stream.observe_ce(trace.ces[next_ce++]);
      }
      while (next_event < trace.events.size() &&
             trace.events[next_event].time <= t) {
        stream.observe_event(trace.events[next_event++]);
      }
      stream.features_at(t, features);
      benchmark::DoNotOptimize(features);
    }
  }
}
BENCHMARK(BM_FeaturesAt)->Unit(benchmark::kMillisecond);

ml::Dataset bench_dataset(std::size_t rows) {
  Rng rng(4);
  ml::Dataset d;
  for (std::size_t i = 0; i < rows; ++i) {
    std::vector<float> row(30);
    for (float& v : row) v = static_cast<float>(rng.normal());
    d.x.push_row(row);
    d.y.push_back(rng.bernoulli(0.2) ? 1 : 0);
    d.weight.push_back(1.0f);
    d.dimm.push_back(static_cast<dram::DimmId>(i));
    d.time.push_back(0);
  }
  return d;
}

// Row-count scaling of the binned trainers (single-threaded so the numbers
// isolate the columnar-histogram work, not the pool). tools/run_benches.sh
// records these into BENCH_train.json as the perf trajectory.
void row_args(benchmark::internal::Benchmark* bench) {
  bench->ArgName("rows");
  bench->Arg(2000);
  bench->Arg(10000);
  bench->Arg(50000);
}

void BM_GbdtTrain(benchmark::State& state) {
  ThreadPool::ScopedLimit cap(1);
  const ml::Dataset d = bench_dataset(static_cast<std::size_t>(state.range(0)));
  ml::GbdtParams params;
  params.max_rounds = 30;
  params.early_stopping_rounds = 0;
  for (auto _ : state) {
    Rng rng(5);
    ml::Gbdt model(params);
    model.fit(d, rng);
    benchmark::DoNotOptimize(model.rounds_used());
  }
}
BENCHMARK(BM_GbdtTrain)->Apply(row_args)->Unit(benchmark::kMillisecond);

void BM_TreeTrain(benchmark::State& state) {
  ThreadPool::ScopedLimit cap(1);
  const ml::Dataset d = bench_dataset(static_cast<std::size_t>(state.range(0)));
  const ml::BinnedDataset binned = ml::BinnedDataset::build(d);
  std::vector<std::size_t> rows(d.size());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  const ml::ClassificationTreeParams params;
  for (auto _ : state) {
    Rng rng(9);
    const ml::Tree tree = ml::fit_classification_tree(binned, rows, params, rng);
    benchmark::DoNotOptimize(tree.nodes().size());
  }
}
BENCHMARK(BM_TreeTrain)->Apply(row_args)->Unit(benchmark::kMillisecond);

// --- Batch prediction: flat engine vs pointer walker ------------------------
//
// Models are trained once per process (function-local statics) on the
// 2000-row config; the benchmarks scale the *scored* row count. The Walker
// variants reproduce the pre-flat semantics — per row, walk every
// pointer-linked tree via Tree::predict — and are the baseline column of
// BENCH_predict.json. The non-walker variants call Model::predict_batch,
// which dispatches to the compiled FlatEnsemble. All four run single-threaded
// so the JSON speedup isolates the layout/batching win, not the pool.

const ml::RandomForest& predict_forest_model() {
  static const ml::RandomForest model = [] {
    ml::RandomForestParams params;
    params.trees = 100;
    ml::RandomForest fitted(params);
    Rng rng(6);
    fitted.fit(bench_dataset(2000), rng);
    return fitted;
  }();
  return model;
}

const ml::Gbdt& predict_gbdt_model() {
  static const ml::Gbdt model = [] {
    ml::GbdtParams params;
    params.max_rounds = 100;
    params.early_stopping_rounds = 0;
    ml::Gbdt fitted(params);
    Rng rng(6);
    fitted.fit(bench_dataset(2000), rng);
    return fitted;
  }();
  return model;
}

void BM_ForestPredict(benchmark::State& state) {
  ThreadPool::ScopedLimit cap(1);
  const ml::RandomForest& model = predict_forest_model();
  const ml::Dataset d = bench_dataset(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict_batch(d.x));
  }
}
BENCHMARK(BM_ForestPredict)->Apply(row_args)->Unit(benchmark::kMillisecond);

void BM_ForestPredictWalker(benchmark::State& state) {
  ThreadPool::ScopedLimit cap(1);
  const ml::RandomForest& model = predict_forest_model();
  const ml::Dataset d = bench_dataset(static_cast<std::size_t>(state.range(0)));
  std::vector<double> scores(d.size());
  for (auto _ : state) {
    for (std::size_t r = 0; r < d.size(); ++r) {
      double total = 0.0;
      for (const ml::Tree& tree : model.trees()) {
        total += tree.predict(d.x.row(r));
      }
      scores[r] = total / static_cast<double>(model.trees().size());
    }
    benchmark::DoNotOptimize(scores.data());
  }
}
BENCHMARK(BM_ForestPredictWalker)->Apply(row_args)
    ->Unit(benchmark::kMillisecond);

void BM_GbdtPredict(benchmark::State& state) {
  ThreadPool::ScopedLimit cap(1);
  const ml::Gbdt& model = predict_gbdt_model();
  const ml::Dataset d = bench_dataset(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict_batch(d.x));
  }
}
BENCHMARK(BM_GbdtPredict)->Apply(row_args)->Unit(benchmark::kMillisecond);

void BM_GbdtPredictWalker(benchmark::State& state) {
  ThreadPool::ScopedLimit cap(1);
  const ml::Gbdt& model = predict_gbdt_model();
  const Json json = model.to_json();
  const double base = json.at("base_score").as_number();
  const double lr = json.at("learning_rate").as_number();
  const ml::Dataset d = bench_dataset(static_cast<std::size_t>(state.range(0)));
  std::vector<double> scores(d.size());
  for (auto _ : state) {
    for (std::size_t r = 0; r < d.size(); ++r) {
      double raw = base;
      for (const ml::Tree& tree : model.trees()) {
        raw += lr * tree.predict(d.x.row(r));
      }
      scores[r] = 1.0 / (1.0 + std::exp(-raw));
    }
    benchmark::DoNotOptimize(scores.data());
  }
}
BENCHMARK(BM_GbdtPredictWalker)->Apply(row_args)
    ->Unit(benchmark::kMillisecond);

void BM_ForestTrain(benchmark::State& state) {
  const ml::Dataset d = bench_dataset(2000);
  ml::RandomForestParams params;
  params.trees = 30;
  for (auto _ : state) {
    Rng rng(7);
    ml::RandomForest model(params);
    model.fit(d, rng);
    benchmark::DoNotOptimize(model.trees().size());
  }
}
BENCHMARK(BM_ForestTrain)->Unit(benchmark::kMillisecond);

// Dense gemm kernels at FT-Transformer shapes (batch*tokens x d_model). The
// inputs are fully dense, the common case in training — the kernels must not
// pay for sparse-input branches here.
void BM_Gemm(benchmark::State& state) {
  Rng rng(10);
  const std::size_t m = 256, k = 64, n = 64;
  const ml::Tensor a = ml::Tensor::random_uniform(m, k, 0.5f, rng);
  const ml::Tensor b = ml::Tensor::random_uniform(k, n, 0.5f, rng);
  ml::Tensor out(m, n);
  for (auto _ : state) {
    ml::gemm(a, b, out, /*accumulate=*/true);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_Gemm)->Unit(benchmark::kMicrosecond);

void BM_GemmBt(benchmark::State& state) {
  Rng rng(11);
  const std::size_t m = 256, k = 64, n = 64;
  const ml::Tensor a = ml::Tensor::random_uniform(m, k, 0.5f, rng);
  const ml::Tensor b = ml::Tensor::random_uniform(n, k, 0.5f, rng);
  ml::Tensor out(m, n);
  for (auto _ : state) {
    ml::gemm_bt(a, b, out, /*accumulate=*/true);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_GemmBt)->Unit(benchmark::kMicrosecond);

void BM_AttentionForward(benchmark::State& state) {
  Rng rng(8);
  const auto tokens = 51, d_model = 16;
  ml::Tensor q = ml::Tensor::random_uniform(4 * tokens, d_model, 0.5f, rng);
  for (auto _ : state) {
    ml::Graph graph;
    const int qi = graph.leaf(q, false);
    benchmark::DoNotOptimize(graph.attention(qi, qi, qi, tokens, 2));
  }
}
BENCHMARK(BM_AttentionForward)->Unit(benchmark::kMicrosecond);

void BM_FleetSimulation(benchmark::State& state) {
  const sim::ScenarioParams scenario = sim::purley_scenario().scaled(0.02);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate_fleet(scenario));
  }
}
BENCHMARK(BM_FleetSimulation)->Unit(benchmark::kMillisecond);

// --- Parallel hot paths -----------------------------------------------------
//
// Each benchmark takes the thread count as its argument (1 / 2 / pool
// default), capping the pool with ScopedLimit, so the speedup trajectory is
// visible in the bench JSON. Outputs are byte-identical across thread counts
// (the determinism contract); only wall-clock changes.

void thread_args(benchmark::internal::Benchmark* bench) {
  bench->ArgName("threads");
  bench->Arg(1);
  bench->Arg(2);
  const int full = ThreadPool::default_threads();
  if (full > 2) bench->Arg(full);
}

void BM_ParallelFleetSim(benchmark::State& state) {
  ThreadPool::ScopedLimit cap(static_cast<int>(state.range(0)));
  const sim::ScenarioParams scenario = sim::purley_scenario().scaled(0.05);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate_fleet(scenario));
  }
}
BENCHMARK(BM_ParallelFleetSim)->Apply(thread_args)
    ->Unit(benchmark::kMillisecond);

void BM_ParallelForestFit(benchmark::State& state) {
  ThreadPool::ScopedLimit cap(static_cast<int>(state.range(0)));
  const ml::Dataset d = bench_dataset(2000);
  ml::RandomForestParams params;
  params.trees = 30;
  for (auto _ : state) {
    Rng rng(7);
    ml::RandomForest model(params);
    model.fit(d, rng);
    benchmark::DoNotOptimize(model.trees().size());
  }
}
BENCHMARK(BM_ParallelForestFit)->Apply(thread_args)
    ->Unit(benchmark::kMillisecond);

void BM_ParallelGbdtFit(benchmark::State& state) {
  ThreadPool::ScopedLimit cap(static_cast<int>(state.range(0)));
  const ml::Dataset d = bench_dataset(4000);
  ml::GbdtParams params;
  params.max_rounds = 30;
  params.early_stopping_rounds = 0;
  for (auto _ : state) {
    Rng rng(5);
    ml::Gbdt model(params);
    model.fit(d, rng);
    benchmark::DoNotOptimize(model.rounds_used());
  }
}
BENCHMARK(BM_ParallelGbdtFit)->Apply(thread_args)
    ->Unit(benchmark::kMillisecond);

void BM_ScoreDimms(benchmark::State& state) {
  // Train once (shared across thread-count variants); time only the
  // fleet-scale per-DIMM scoring loop — the paper's operational bottleneck.
  static const sim::FleetTrace& fleet = feature_fleet();
  static core::Experiment* experiment = [] {
    return new core::Experiment(fleet, core::PipelineConfig{});
  }();
  static const ml::BinaryClassifier* model = [] {
    auto fitted = experiment->run_with_model(core::Algorithm::kRandomForest);
    return fitted.second.release();
  }();
  ThreadPool::ScopedLimit cap(static_cast<int>(state.range(0)));
  std::vector<core::ScoredStream> streams;
  std::vector<core::AlarmOutcome> outcomes;
  for (auto _ : state) {
    experiment->score_dimms(*model, experiment->test_dimms(), streams,
                            outcomes, nullptr, nullptr);
    benchmark::DoNotOptimize(streams.size());
  }
}
BENCHMARK(BM_ScoreDimms)->Apply(thread_args)->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main instead of benchmark_main: stamps the JSON context block with
// the facts the run_benches.sh trajectory files need to stay interpretable —
// the real online CPU count (benchmark's own `num_cpus` probe reports 1 in
// this VM), the SIMD lane the runtime dispatcher picked (or MEMFP_SIMD
// forced), every lane this host supports, and the raw CPU feature list.
int main(int argc, char** argv) {
  benchmark::AddCustomContext(
      "num_cpus_online", std::to_string(memfp::bench::num_cpus_online()));
  benchmark::AddCustomContext("simd_level",
                              simd::level_name(simd::active_level()));
  std::string supported;
  for (const simd::Level level : simd::supported_levels()) {
    if (!supported.empty()) supported += ' ';
    supported += simd::level_name(level);
  }
  benchmark::AddCustomContext("simd_supported", supported);
  benchmark::AddCustomContext("cpu_features", simd::cpu_features());
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
