// Regenerates paper Table II: precision / recall / F1 / VIRR for the rule
// baseline (Risky CE Pattern), Random Forest, LightGBM-style GBDT and the
// FT-Transformer, per platform.
//
// With only tens of failing DIMMs per held-out split, single-split metrics
// are noisy; the tree models and the baseline are therefore averaged over
// three DIMM-split seeds. The FT-Transformer averages two splits (its
// training cost dominates the bench on a single core).
//
// "X" marks the baseline's inapplicability outside Purley, as in the paper.
#include <cstdio>

#include "bench_common.h"
#include "common/table.h"
#include "core/pipeline.h"
#include "core/platform_profile.h"
#include "sim/fleet.h"

namespace {

using namespace memfp;

struct Averaged {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  double virr = 0.0;
  bool applicable = true;
};

Averaged run_averaged(const sim::FleetTrace& fleet, core::Algorithm algorithm,
                      const std::vector<std::uint64_t>& seeds) {
  Averaged avg;
  int runs = 0;
  for (std::uint64_t seed : seeds) {
    core::PipelineConfig config;
    config.seed = seed;
    core::Experiment experiment(fleet, config);
    const core::Experiment::Result result = experiment.run(algorithm);
    if (!result.applicable) {
      avg.applicable = false;
      return avg;
    }
    avg.precision += result.precision;
    avg.recall += result.recall;
    avg.f1 += result.f1;
    avg.virr += result.virr;
    ++runs;
  }
  avg.precision /= runs;
  avg.recall /= runs;
  avg.f1 /= runs;
  avg.virr /= runs;
  return avg;
}

void add_result_row(TextTable& table, const std::string& name,
                    const Averaged& avg,
                    const std::optional<core::PaperReference>& paper) {
  std::vector<std::string> row{name};
  if (avg.applicable) {
    row.push_back(bench::fmt(avg.precision));
    row.push_back(bench::fmt(avg.recall));
    row.push_back(bench::fmt(avg.f1));
    row.push_back(bench::fmt(avg.virr));
  } else {
    for (int i = 0; i < 4; ++i) row.push_back("X");
  }
  if (paper) {
    row.push_back(bench::fmt(paper->precision) + "/" +
                  bench::fmt(paper->recall) + "/" + bench::fmt(paper->f1) +
                  "/" + bench::fmt(paper->virr));
  } else {
    row.push_back("X");
  }
  table.add_row(std::move(row));
}

}  // namespace

int main() {
  const std::vector<std::uint64_t> tree_seeds{13, 29, 101};
  const std::vector<std::uint64_t> ft_seeds{13, 29};

  for (const sim::ScenarioParams& scenario : sim::all_platform_scenarios()) {
    const sim::FleetTrace fleet =
        sim::simulate_fleet(scenario.scaled(bench::bench_scale()));
    const core::PlatformProfile profile = core::profile_for(fleet.platform);

    TextTable table(std::string("Table II: ") +
                    dram::platform_name(fleet.platform) +
                    " (measured, mean of splits | paper P/R/F1/VIRR)");
    table.set_header(
        {"Algorithm", "Precision", "Recall", "F1", "VIRR", "paper"});

    add_result_row(table, "Risky CE Pattern [7]",
                   run_averaged(fleet, core::Algorithm::kRiskyCePattern,
                                tree_seeds),
                   profile.paper_risky_ce);
    add_result_row(table, "Random forest",
                   run_averaged(fleet, core::Algorithm::kRandomForest,
                                tree_seeds),
                   profile.paper_random_forest);
    add_result_row(table, "LightGBM",
                   run_averaged(fleet, core::Algorithm::kLightGbm, tree_seeds),
                   profile.paper_lightgbm);
    add_result_row(table, "FT-Transformer (2 splits)",
                   run_averaged(fleet, core::Algorithm::kFtTransformer,
                                ft_seeds),
                   profile.paper_ft_transformer);
    std::fputs(table.render().c_str(), stdout);
    std::puts("");
    std::fflush(stdout);
  }
  std::puts(
      "Paper reference (Finding 4): prediction quality orders\n"
      "Purley > K920 > Whitley; LightGBM leads on Purley/K920 and beats the\n"
      "rule baseline on Purley by ~15% F1. Split-to-split spread at this\n"
      "fleet scale is roughly +/-0.05 F1.");
  return 0;
}
