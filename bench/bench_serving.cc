// Online serving throughput bench (ROADMAP item 3): drives the sharded,
// batched ServingEngine over in-memory and store-backed fleets and over
// synthetic CE-storm scenarios, reporting sustained events/sec, scored
// rows/sec and p50/p99 per-shard tick latency.
//
// Three claims, as numbers:
//   1. The batched engine beats the frozen pre-engine serial serving loop
//      (single-row predict, deque-buffered extraction; measured at commit
//      d688675 on this VM: 3.33 s for the purley x2.0 / 56-day workload)
//      by >= 3x, and the in-run serial oracle (run_reference, which already
//      shares the optimized extraction) by the batching margin alone.
//   2. A >= 10^5-DIMM fleet serves at a sustained events/sec with bounded
//      tick latency, in memory or streamed from trace-store shards.
//   3. Under CE storms, admission control bounds p99 tick latency while the
//      unshedded run's p99 grows with storm intensity — load shedding as a
//      number, not a claim.
//
// Usage: bench_serving [BENCH_serving.json]
//   With a path, writes the machine-readable trajectory that
//   tools/run_benches.sh records; without, prints the tables only.
//   MEMFP_BENCH_SCALE scales fleet sizes (e.g. 0.02 for a smoke run).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "core/pipeline.h"
#include "mlops/serving.h"
#include "sim/fleet.h"
#include "sim/trace_store.h"

namespace {

using namespace memfp;

// Frozen serial-serving baseline: the pre-engine OnlinePredictionService
// loop (one single-row predict per due tick, deque-buffered extraction)
// on the workload below, measured at commit d688675 on this VM. Valid at
// MEMFP_BENCH_SCALE=1 only.
constexpr double kFrozenSerialSeconds = 3.33;
constexpr char kFrozenWorkload[] =
    "purley x2.0 (10936 DIMMs), 56-day horizon, 2-day cadence";

constexpr SimTime kServeStart = days(6);
constexpr SimTime kServeEnd = days(56);
constexpr SimDuration kCadence = days(2);

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::uint64_t mono_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::vector<double> latencies_ms(const mlops::ServingStats& stats) {
  std::vector<double> ms;
  ms.reserve(stats.tick_latencies_ns.size());
  for (const std::uint64_t ns : stats.tick_latencies_ns) {
    ms.push_back(static_cast<double>(ns) / 1e6);
  }
  return ms;
}

struct Point {
  std::string name;
  std::uint64_t dimms = 0;
  std::uint64_t events = 0;
  std::uint64_t scored = 0;
  double seconds = 0.0;
  double ref_seconds = 0.0;  // run_reference on the same workload, 0 = n/a
  bench::LatencySummary tick_ms;
  std::size_t peak_rss = 0;
};

struct StormPoint {
  int ces_per_tick = 0;
  bool admission = false;
  double seconds = 0.0;
  std::uint64_t events = 0;
  std::uint64_t scored = 0;
  std::uint64_t shed = 0;
  std::uint64_t degraded = 0;
  bench::LatencySummary tick_ms;
};

/// A hand-built storm fleet: every 8th DIMM logs `ces_per_tick` CEs per
/// cadence tick (a BMC-suppression-scale burst), the rest trickle one CE a
/// tick. Distinct cells per burst keep the observation window fat, which is
/// what makes un-shedded storm scoring expensive.
sim::FleetTrace storm_fleet(std::size_t dimms, int ces_per_tick,
                            SimTime start, SimTime end, SimDuration cadence) {
  sim::FleetTrace fleet;
  fleet.platform = dram::Platform::kIntelPurley;
  fleet.horizon = end + days(1);
  for (dram::DimmId id = 0; id < dimms; ++id) {
    sim::DimmTrace dimm;
    dimm.id = id;
    const int per_tick = id % 8 == 0 ? ces_per_tick : 1;
    for (SimTime t = start; t <= end; t += cadence) {
      for (int k = 0; k < per_tick; ++k) {
        dram::CeEvent ce;
        ce.time = t - cadence + 1 + k % (cadence - 1);
        ce.coord.bank = k % 16;
        ce.coord.row = (k * 37) % 4096;
        ce.coord.column = (k * 11) % 128;
        ce.pattern.add({static_cast<std::uint8_t>(k % 8), 0});
        dimm.ces.push_back(ce);
      }
    }
    fleet.dimms.push_back(std::move(dimm));
  }
  return fleet;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : nullptr;
  const double scale = bench::bench_scale();

  // A production-shaped model for the scoring stage. The training fleet
  // shrinks with the smoke scale but never below a quarter, so the model
  // keeps a realistic tree count and depth.
  const double train_scale = 0.12 * std::clamp(scale, 0.25, 1.0);
  const sim::FleetTrace train_fleet =
      sim::simulate_fleet(sim::purley_scenario(/*seed=*/7).scaled(train_scale));
  core::PipelineConfig pipeline_config;
  core::Experiment experiment(train_fleet, pipeline_config);
  auto [eval, model] = experiment.run_with_model(core::Algorithm::kLightGbm);

  // Throughput points run alarm-free (threshold above any score) so every
  // DIMM is served across the whole span — steady-state serving load, not
  // the tail-off after alarms retire streams. That matches the frozen
  // baseline loop, which was measured without an alarm break.
  constexpr double kNoAlarms = 2.0;
  const mlops::FeatureStore store;
  std::vector<Point> points;

  const auto serve_point =
      [&](const std::string& name, const sim::FleetTrace& fleet,
          const std::vector<std::string>& shard_files, bool with_reference) {
        mlops::ServingConfig config;
        config.shards = std::max<std::size_t>(
            1, (fleet.dimms.size() + 2047) / 2048);
        config.now_ns = mono_ns;
        // Best of kReps timed sweeps, fresh engine state each time: this
        // single-tenant VM sees ±20% wall-clock noise from co-tenants, and
        // the minimum is the standard noise-robust estimator for a
        // deterministic workload. The first rep doubles as the warmup
        // (first-touch page faults on the freshly simulated fleet).
        // The frozen-baseline point gates the headline speedup, so it gets
        // two extra reps; the 10^5-DIMM points are long enough to average
        // the noise out on their own.
        const int reps = with_reference ? 5 : 3;
        Point point;
        point.name = name;
        point.seconds = 1e30;
        for (int rep = 0; rep < reps; ++rep) {
          mlops::AlarmSystem alarms;
          mlops::Monitoring monitoring;
          mlops::ServingEngine engine(*model, kNoAlarms, store, alarms,
                                      monitoring, config);
          const auto start = std::chrono::steady_clock::now();
          const mlops::ServingStats stats =
              shard_files.empty()
                  ? engine.run_over(fleet, kServeStart, kServeEnd, kCadence)
                  : engine.run_over_store(shard_files, kServeStart, kServeEnd,
                                          kCadence);
          const double seconds = seconds_since(start);
          if (seconds >= point.seconds) continue;
          point.seconds = seconds;
          point.dimms = stats.dimms;
          point.events = stats.ingested_ces + stats.ingested_events;
          point.scored = stats.scored;
          point.tick_ms = bench::summarize_latencies(latencies_ms(stats));
        }
        point.peak_rss = bench::peak_rss_bytes();
        if (with_reference) {
          point.ref_seconds = 1e30;
          for (int rep = 0; rep < reps; ++rep) {
            mlops::AlarmSystem ref_alarms;
            mlops::Monitoring ref_monitoring;
            mlops::ServingEngine reference(*model, kNoAlarms, store,
                                           ref_alarms, ref_monitoring, {});
            const auto ref_start = std::chrono::steady_clock::now();
            reference.run_reference(fleet, kServeStart, kServeEnd, kCadence);
            point.ref_seconds =
                std::min(point.ref_seconds, seconds_since(ref_start));
          }
        }
        points.push_back(point);
      };

  // --- Point 1: the frozen-baseline workload, engine vs in-run serial. ---
  {
    sim::ScenarioParams params = sim::purley_scenario(/*seed=*/1234)
                                     .scaled(2.0 * scale);
    params.horizon = days(56);
    const sim::FleetTrace fleet = sim::simulate_fleet(params);
    serve_point("frozen-workload", fleet, {}, /*with_reference=*/true);
  }

  // --- Point 2: a 10^5-planned-DIMM fleet, in memory and store-backed. ---
  const std::string store_dir =
      (std::filesystem::temp_directory_path() / "memfp_serving_bench")
          .string();
  {
    const sim::ScenarioParams base = sim::purley_scenario(/*seed=*/1234);
    const double base_total =
        static_cast<double>(sim::plan_fleet(base).total());
    sim::ScenarioParams params = base.scaled(1e5 * scale / base_total);
    params.horizon = days(56);
    const sim::FleetTrace fleet = sim::simulate_fleet(params);
    serve_point("fleet-1e5", fleet, {}, /*with_reference=*/false);

    // Same fleet from trace-store shards: the serving path of a fleet that
    // never fit in memory (PR 6 store). One serving shard per file.
    std::filesystem::remove_all(store_dir);
    std::filesystem::create_directories(store_dir);
    constexpr std::size_t kDimmsPerShard = 16384;
    std::vector<std::string> files;
    for (std::size_t begin = 0; begin < fleet.dimms.size();
         begin += kDimmsPerShard) {
      files.push_back(sim::shard_path(store_dir, files.size()));
      sim::ShardWriter writer(files.back(), fleet.platform, fleet.horizon);
      const std::size_t end =
          std::min(begin + kDimmsPerShard, fleet.dimms.size());
      for (std::size_t i = begin; i < end; ++i) {
        writer.append(fleet.dimms[i]);
      }
      writer.finish();
    }
    serve_point("store-1e5", fleet, files, /*with_reference=*/false);
    std::filesystem::remove_all(store_dir);
  }

  // --- Storm sweep: p99 with and without admission control. ---
  // Sub-day cadence keeps ~20 ticks inside the 5-day observation window, so
  // a storm DIMM's window holds ces_per_tick * 20 records — the regime
  // where scoring a storm DIMM every tick is what hurts.
  const SimTime storm_start = days(6);
  const SimTime storm_end = days(16);
  const SimDuration storm_cadence = hours(6);
  const auto storm_dimms = static_cast<std::size_t>(
      std::max(64.0, 512.0 * scale));
  std::vector<StormPoint> storms;
  for (const int ces_per_tick : {50, 400}) {
    const sim::FleetTrace fleet = storm_fleet(
        storm_dimms, ces_per_tick, storm_start, storm_end, storm_cadence);
    for (const bool admission : {false, true}) {
      mlops::ServingConfig config;
      config.shards = std::max<std::size_t>(1, storm_dimms / 128);
      config.now_ns = mono_ns;
      config.admission.enabled = admission;
      config.admission.tokens_per_tick = 16.0;
      config.admission.bucket_capacity = 128.0;
      config.admission.degraded_stride = 4;
      // Best-of-3 for the same reason as the throughput points: the
      // admission-on/off p99 comparison must not hinge on co-tenant noise.
      StormPoint point;
      point.ces_per_tick = ces_per_tick;
      point.admission = admission;
      point.seconds = 1e30;
      for (int rep = 0; rep < 3; ++rep) {
        mlops::AlarmSystem alarms;
        mlops::Monitoring monitoring;
        mlops::ServingEngine engine(*model, kNoAlarms, store, alarms,
                                    monitoring, config);
        const auto start = std::chrono::steady_clock::now();
        const mlops::ServingStats stats =
            engine.run_over(fleet, storm_start, storm_end, storm_cadence);
        const double seconds = seconds_since(start);
        if (seconds >= point.seconds) continue;
        point.seconds = seconds;
        point.events = stats.ingested_ces + stats.ingested_events;
        point.scored = stats.scored;
        point.shed = stats.shed_scores;
        point.degraded = stats.degraded_dimms;
        point.tick_ms = bench::summarize_latencies(latencies_ms(stats));
      }
      storms.push_back(point);
    }
  }

  // --- Report. ---
  TextTable table("Online serving throughput (engine: sharded + batched)");
  table.set_header({"workload", "DIMMs", "events", "scored", "sec",
                    "events/s", "scored/s", "p50 ms", "p99 ms", "serial sec",
                    "speedup"});
  for (const Point& point : points) {
    table.add_row(
        {point.name, std::to_string(point.dimms),
         std::to_string(point.events), std::to_string(point.scored),
         bench::fmt(point.seconds),
         bench::fmt(static_cast<double>(point.events) / point.seconds, 0),
         bench::fmt(static_cast<double>(point.scored) / point.seconds, 0),
         bench::fmt(point.tick_ms.p50, 3), bench::fmt(point.tick_ms.p99, 3),
         point.ref_seconds > 0.0 ? bench::fmt(point.ref_seconds) : "-",
         point.ref_seconds > 0.0
             ? bench::fmt(point.ref_seconds / point.seconds) + "x"
             : "-"});
  }
  std::printf("%s", table.render().c_str());
  if (scale == 1.0 && !points.empty()) {
    std::printf(
        "frozen serial baseline (%s): %s s -> engine %s s, %sx\n",
        kFrozenWorkload, bench::fmt(kFrozenSerialSeconds).c_str(),
        bench::fmt(points[0].seconds).c_str(),
        bench::fmt(kFrozenSerialSeconds / points[0].seconds).c_str());
  }

  TextTable storm_table("CE-storm admission control");
  storm_table.set_header({"CEs/tick", "admission", "sec", "events/s",
                          "scored", "shed", "degraded", "p50 ms", "p99 ms"});
  for (const StormPoint& point : storms) {
    storm_table.add_row(
        {std::to_string(point.ces_per_tick), point.admission ? "on" : "off",
         bench::fmt(point.seconds),
         bench::fmt(static_cast<double>(point.events) / point.seconds, 0),
         std::to_string(point.scored), std::to_string(point.shed),
         std::to_string(point.degraded), bench::fmt(point.tick_ms.p50, 3),
         bench::fmt(point.tick_ms.p99, 3)});
  }
  std::printf("%s", storm_table.render().c_str());

  if (out_path != nullptr) {
    std::FILE* out = std::fopen(out_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "bench_serving: cannot write %s\n", out_path);
      return 1;
    }
    bench::JsonEmitter json;
    json.begin_object();
    bench::emit_context(json);
    json.begin_object("baseline");
    json.field("commit", "d688675");
    json.field("workload", kFrozenWorkload);
    json.field("serial_seconds", kFrozenSerialSeconds);
    json.field("valid_at_scale", 1.0, 1);
    json.end_object();
    json.begin_array("points");
    for (std::size_t i = 0; i < points.size(); ++i) {
      const Point& p = points[i];
      json.begin_object();
      json.field("workload", p.name);
      json.field("dimms", static_cast<unsigned long long>(p.dimms));
      json.field("events", static_cast<unsigned long long>(p.events));
      json.field("scored", static_cast<unsigned long long>(p.scored));
      json.field("seconds", p.seconds);
      json.field("events_per_sec",
                 static_cast<double>(p.events) / p.seconds, 0);
      json.field("scored_per_sec",
                 static_cast<double>(p.scored) / p.seconds, 0);
      json.field("tick_p50_ms", p.tick_ms.p50, 3);
      json.field("tick_p99_ms", p.tick_ms.p99, 3);
      json.field("serial_seconds", p.ref_seconds > 0.0 ? p.ref_seconds : 0.0);
      json.field("speedup_vs_serial",
                 p.ref_seconds > 0.0 ? p.ref_seconds / p.seconds : 0.0);
      json.field("speedup_vs_frozen",
                 i == 0 && scale == 1.0 ? kFrozenSerialSeconds / p.seconds
                                        : 0.0);
      json.field("peak_rss_mb",
                 static_cast<double>(p.peak_rss) / (1024.0 * 1024.0), 1);
      json.end_object();
    }
    json.end_array();
    json.begin_array("storm");
    for (const StormPoint& p : storms) {
      json.begin_object();
      json.field("ces_per_tick", p.ces_per_tick);
      json.field("admission", p.admission);
      json.field("seconds", p.seconds);
      json.field("events_per_sec",
                 static_cast<double>(p.events) / p.seconds, 0);
      json.field("scored", static_cast<unsigned long long>(p.scored));
      json.field("shed_scores", static_cast<unsigned long long>(p.shed));
      json.field("degraded_dimms",
                 static_cast<unsigned long long>(p.degraded));
      json.field("tick_p50_ms", p.tick_ms.p50, 3);
      json.field("tick_p99_ms", p.tick_ms.p99, 3);
      json.end_object();
    }
    json.end_array();
    json.end_object();
    std::fputs(json.str().c_str(), out);
    std::fclose(out);
  }
  return 0;
}
