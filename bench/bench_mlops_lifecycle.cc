// Regenerates the paper's Fig 6 story as a measurable experiment: the MLOps
// loop keeps failure prediction healthy across a fleet-distribution shift.
//
//   epoch 1: ingest -> CI/CD train -> gated promote -> online serving
//            (feedback precision/recall healthy, score reference frozen)
//   epoch 2: the fleet changes (new fault mix: more multi-device faults,
//            shorter preludes, more lookalikes) -> PSI drift alert fires,
//            online quality degrades -> retrain on fresh data -> rollout ->
//            online quality recovers.
#include <cstdio>

#include "bench_common.h"
#include "common/table.h"
#include "mlops/cicd.h"
#include "mlops/online_service.h"
#include "sim/fleet.h"

namespace {

using namespace memfp;

/// Fleet-distribution shift: the next hardware generation's fault landscape.
sim::ScenarioParams shifted_purley() {
  sim::ScenarioParams params = sim::purley_scenario(/*seed=*/4711);
  params.lookalike_fraction = 0.40;
  params.short_prelude_fraction = 0.35;
  params.escalator_mix = {
      {dram::FaultMode::kRow, dram::DeviceScope::kMultiDevice, 0.45},
      {dram::FaultMode::kBank, dram::DeviceScope::kMultiDevice, 0.25},
      {dram::FaultMode::kRow, dram::DeviceScope::kSingleDevice, 0.20},
      {dram::FaultMode::kBank, dram::DeviceScope::kSingleDevice, 0.10},
  };
  return params;
}

struct OnlineQuality {
  double precision = 0.0;
  double recall = 0.0;
  double f1() const {
    return precision + recall == 0.0
               ? 0.0
               : 2.0 * precision * recall / (precision + recall);
  }
  double psi = 0.0;
  bool drift = false;
  double realized_virr = 0.0;
};

/// Serves `fleet` with the current production model and reports the
/// feedback-loop quality. `monitoring` carries the frozen score reference.
OnlineQuality serve_epoch(const mlops::ModelRegistry& registry,
                          const mlops::FeatureStore& store,
                          const sim::FleetTrace& fleet,
                          mlops::Monitoring& monitoring) {
  mlops::AlarmSystem alarms;
  mlops::OnlinePredictionService service(
      registry, fleet.platform, store, alarms, monitoring);
  service.run_over(fleet, days(40), days(260), days(4));
  service.apply_feedback(fleet);
  OnlineQuality quality;
  quality.precision = monitoring.online_precision();
  quality.recall = monitoring.online_recall();
  quality.psi = monitoring.score_psi();
  quality.drift = monitoring.drift_detected();
  quality.realized_virr =
      mlops::account_mitigations(fleet, alarms, store.windows())
          .realized_virr;
  return quality;
}

}  // namespace

int main() {
  const double scale = 0.5 * bench::bench_scale();
  const sim::FleetTrace epoch1 =
      sim::simulate_fleet(sim::purley_scenario().scaled(scale));
  const sim::FleetTrace epoch2 =
      sim::simulate_fleet(shifted_purley().scaled(scale));

  mlops::DataLake lake;
  lake.ingest("bmc/purley/epoch1", epoch1);
  lake.ingest("bmc/purley/epoch2", epoch2);
  mlops::ModelRegistry registry;
  mlops::FeatureStore store;

  // ---- epoch 1: initial deployment ----
  mlops::TrainingPipelineConfig config;
  config.algorithm = core::Algorithm::kLightGbm;
  const mlops::TrainingRunReport v1 =
      run_training_pipeline(lake, "bmc/purley/epoch1", registry, config);

  mlops::Monitoring monitoring;
  monitoring.record_ingest(lake.record_count());
  const OnlineQuality q1 = serve_epoch(registry, store, epoch1, monitoring);
  monitoring.freeze_reference();

  // ---- epoch 2: shifted fleet under the stale model ----
  mlops::Monitoring monitoring2 = monitoring;
  const OnlineQuality q2_stale =
      serve_epoch(registry, store, epoch2, monitoring2);

  // ---- retrain on the fresh partition and roll out ----
  const mlops::TrainingRunReport v2 =
      run_training_pipeline(lake, "bmc/purley/epoch2", registry, config);
  if (!v2.promoted) {
    // The gate compares against the incumbent's *old-epoch* benchmark; after
    // a confirmed drift alert the rollout decision is the operator's.
    registry.promote(v2.version, /*min_improvement=*/-1.0);
  }
  mlops::Monitoring monitoring3 = monitoring;
  const OnlineQuality q2_fresh =
      serve_epoch(registry, store, epoch2, monitoring3);

  TextTable table("MLOps lifecycle (Fig 6): drift -> retrain -> recover");
  table.set_header({"stage", "model", "online P", "online R", "online F1",
                    "VIRR", "score PSI", "drift alert"});
  table.add_row({"epoch 1", "v" + std::to_string(v1.version),
                 bench::fmt(q1.precision), bench::fmt(q1.recall),
                 bench::fmt(q1.f1()), bench::fmt(q1.realized_virr),
                 "(reference)", "-"});
  table.add_row({"epoch 2, stale model", "v" + std::to_string(v1.version),
                 bench::fmt(q2_stale.precision), bench::fmt(q2_stale.recall),
                 bench::fmt(q2_stale.f1()), bench::fmt(q2_stale.realized_virr),
                 bench::fmt(q2_stale.psi, 3), q2_stale.drift ? "YES" : "no"});
  table.add_row({"epoch 2, retrained", "v" + std::to_string(v2.version),
                 bench::fmt(q2_fresh.precision), bench::fmt(q2_fresh.recall),
                 bench::fmt(q2_fresh.f1()), bench::fmt(q2_fresh.realized_virr),
                 bench::fmt(q2_fresh.psi, 3), "-"});
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nOffline benchmark F1: v%d %.2f (epoch 1) -> v%d %.2f (epoch 2)\n",
      v1.version, v1.evaluation.f1, v2.version, v2.evaluation.f1);
  std::puts(
      "Expected shape: the stale model degrades on the shifted fleet and the\n"
      "monitoring plane catches it — through the PSI score-drift alert when\n"
      "the shift moves the score distribution, and through the feedback\n"
      "loop's online-precision drop when it does not (rank degradation with\n"
      "a stable score histogram, as here). Retraining on the fresh partition\n"
      "recovers online F1 and VIRR — the paper's Fig 6 loop.");
  return 0;
}
