// Regenerates paper Fig 5: UE rate versus the accumulated error-bit
// statistics of a DIMM's CE history (error-DQ count, error-beat count, DQ
// interval, beat interval) for the two Intel platforms, with the
// highest-rate bucket flagged (the paper's red bar).
#include <cstdio>

#include "bench_common.h"
#include "common/table.h"
#include "core/fault_analysis.h"
#include "sim/fleet.h"

int main() {
  using namespace memfp;

  const sim::ScenarioParams intel_scenarios[] = {sim::purley_scenario(),
                                                 sim::whitley_scenario()};
  for (const sim::ScenarioParams& scenario : intel_scenarios) {
    const sim::FleetTrace fleet =
        sim::simulate_fleet(scenario.scaled(bench::bench_scale()));
    const std::vector<core::BitStatSeries> all_series =
        core::bit_pattern_ue_rates(fleet);

    for (const core::BitStatSeries& series : all_series) {
      TextTable table(std::string("Fig 5: ") +
                      dram::platform_name(fleet.platform) + " - UE rate by " +
                      series.stat);
      table.set_header({series.stat, "DIMMs", "UE rate", "peak"});
      const int peak = series.peak_value(10);
      for (std::size_t i = 0; i < series.value.size(); ++i) {
        if (series.dimms[i] == 0) continue;
        table.add_row({std::to_string(series.value[i]),
                       std::to_string(series.dimms[i]),
                       format_percent(series.ue_rate[i], 1),
                       series.value[i] == peak ? "<== highest" : ""});
      }
      std::fputs(table.render().c_str(), stdout);
    }
    std::puts("");
  }
  std::puts(
      "Paper reference (Finding 3): Purley peaks at 2 error DQs / 2 error\n"
      "beats with a 4-beat interval; Whitley peaks at 4 error DQs / 5 error\n"
      "beats and its intervals carry little signal.");
  return 0;
}
