// Million-DIMM sharded fleet bench (ROADMAP item 1): drives the sharded
// FleetDriver — simulate → encode/spill → stream back → extract → score —
// at 10⁴ → 10⁶ DIMMs with a fixed shard size, and reports throughput
// (DIMMs/sec, events/sec), codec density (encoded bytes/event) and measured
// peak RSS per scale point. Because the shard size is constant, the working
// set is too: peak RSS must stay flat while the fleet grows three decades —
// memory boundedness as a number, not a claim.
//
// Usage: bench_fleet [BENCH_fleet.json]
//   With a path, appends a machine-readable JSON trajectory (what
//   tools/run_benches.sh records); without, prints the table only.
//   MEMFP_BENCH_SCALE scales the DIMM targets (e.g. 0.01 for a smoke run).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "core/pipeline.h"
#include "core/fleet_driver.h"

namespace {

using namespace memfp;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct PointResult {
  std::size_t target = 0;
  std::size_t shards = 0;
  core::FleetDriverResult run;
  double seconds = 0.0;
  std::size_t peak_rss = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : nullptr;
  const double scale = bench::bench_scale();

  // A production-shaped model for the scoring stage: trained once on a
  // small resident fleet, then deployed against every scale point.
  const sim::FleetTrace train_fleet =
      sim::simulate_fleet(sim::purley_scenario(/*seed=*/7).scaled(0.12));
  core::PipelineConfig pipeline_config;
  core::Experiment experiment(train_fleet, pipeline_config);
  auto [eval, model] = experiment.run_with_model(core::Algorithm::kLightGbm);
  const std::size_t rss_after_training = bench::peak_rss_bytes();

  // Reduced horizon for the scale sweep: the per-DIMM event process is
  // stationary, so 8 weeks measures the same per-event codec and pipeline
  // costs as the paper's 39-week window at 1/5 the wall clock.
  const SimTime bench_horizon = days(56);
  const sim::ScenarioParams base = sim::purley_scenario(/*seed=*/1234);
  const double base_total =
      static_cast<double>(sim::plan_fleet(base).total());

  const std::string store_dir =
      (std::filesystem::temp_directory_path() / "memfp_fleet_bench").string();

  std::vector<PointResult> points;
  for (const double target_dimms : {1e4, 1e5, 1e6}) {
    const double target = target_dimms * scale;
    sim::ScenarioParams params = base.scaled(target / base_total);
    params.horizon = bench_horizon;

    core::FleetDriverConfig config;
    config.store_dir = store_dir;
    config.keep_store = false;
    config.windows.cadence = days(2);
    // Fixed shard size: shard count grows with the fleet, the resident
    // working set (one shard of traces + samples) does not.
    const std::size_t total = sim::plan_fleet(params).total();
    config.shards = std::max<std::size_t>(
        1, (total + 16383) / 16384);

    const auto start = std::chrono::steady_clock::now();
    PointResult point;
    point.run = core::run_fleet_driver(params, config, model.get());
    point.seconds = seconds_since(start);
    point.target = static_cast<std::size_t>(std::llround(target));
    point.shards = config.shards;
    point.peak_rss = bench::peak_rss_bytes();
    points.push_back(point);
  }
  std::filesystem::remove_all(store_dir);

  TextTable table("Sharded fleet driver scale sweep (horizon 56 days)");
  table.set_header({"DIMMs", "shards", "events", "DIMMs/s", "events/s",
                    "bytes/event", "samples", "peak RSS MB", "sec"});
  for (const PointResult& point : points) {
    const auto events = static_cast<double>(point.run.events());
    table.add_row(
        {std::to_string(point.run.planned_dimms),
         std::to_string(point.shards), std::to_string(point.run.events()),
         bench::fmt(static_cast<double>(point.run.planned_dimms) /
                    point.seconds, 0),
         bench::fmt(events / point.seconds, 0),
         bench::fmt(static_cast<double>(point.run.encoded_bytes) /
                    std::max(1.0, events)),
         std::to_string(point.run.samples),
         bench::fmt(static_cast<double>(point.peak_rss) / (1024.0 * 1024.0),
                    1),
         bench::fmt(point.seconds)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("peak RSS after model training (pre-sweep floor): %s MB\n",
              bench::fmt(static_cast<double>(rss_after_training) /
                         (1024.0 * 1024.0), 1)
                  .c_str());

  if (out_path != nullptr) {
    std::FILE* out = std::fopen(out_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "bench_fleet: cannot write %s\n", out_path);
      return 1;
    }
    bench::JsonEmitter json;
    json.begin_object();
    bench::emit_context(json);
    json.field("horizon_days", 56);
    json.field("dimms_per_shard", 16384);
    json.field("rss_after_training_mb",
               static_cast<double>(rss_after_training) / (1024.0 * 1024.0),
               1);
    json.begin_array("points");
    for (const PointResult& point : points) {
      const auto events = static_cast<double>(point.run.events());
      json.begin_object();
      json.field("planned_dimms", point.run.planned_dimms);
      json.field("observed_dimms", point.run.observed_dimms);
      json.field("shards", point.shards);
      json.field("events",
                 static_cast<unsigned long long>(point.run.events()));
      json.field("samples", point.run.samples);
      json.field("encoded_bytes",
                 static_cast<unsigned long long>(point.run.encoded_bytes));
      json.field("bytes_per_event",
                 static_cast<double>(point.run.encoded_bytes) /
                     std::max(1.0, events));
      json.field("seconds", point.seconds);
      json.field("dimms_per_sec",
                 static_cast<double>(point.run.planned_dimms) / point.seconds,
                 0);
      json.field("events_per_sec", events / point.seconds, 0);
      json.field("peak_rss_mb",
                 static_cast<double>(point.peak_rss) / (1024.0 * 1024.0), 1);
      json.end_object();
    }
    json.end_array();
    json.end_object();
    std::fputs(json.str().c_str(), out);
    std::fclose(out);
  }
  return 0;
}
