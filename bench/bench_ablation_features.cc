// Ablation study (supporting Findings 2-3): which feature families carry the
// predictive signal on each platform. Runs LightGBM with one feature group
// removed at a time, plus single-group-only runs.
#include <cstdio>

#include "bench_common.h"
#include "common/table.h"
#include "core/pipeline.h"
#include "sim/fleet.h"

namespace {

using namespace memfp;

std::vector<std::size_t> without_group(const features::FeatureSchema& schema,
                                       features::FeatureGroup group) {
  std::vector<std::size_t> keep;
  for (std::size_t i = 0; i < schema.size(); ++i) {
    if (schema.def(i).group != group) keep.push_back(i);
  }
  return keep;
}

double run_f1(const sim::FleetTrace& fleet,
              std::vector<std::size_t> active_features) {
  core::PipelineConfig config;
  config.active_features = std::move(active_features);
  core::Experiment experiment(fleet, config);
  return experiment.run(core::Algorithm::kLightGbm).f1;
}

}  // namespace

int main() {
  const features::FeatureSchema schema = features::FeatureSchema::standard();
  const features::FeatureGroup groups[] = {
      features::FeatureGroup::kTemporal, features::FeatureGroup::kSpatial,
      features::FeatureGroup::kBitLevel, features::FeatureGroup::kStatic,
      features::FeatureGroup::kWorkload};

  for (const sim::ScenarioParams& scenario : sim::all_platform_scenarios()) {
    const sim::FleetTrace fleet =
        sim::simulate_fleet(scenario.scaled(0.6 * bench::bench_scale()));

    TextTable table(std::string("Feature-group ablation (LightGBM F1) - ") +
                    dram::platform_name(fleet.platform));
    table.set_header({"configuration", "F1", "delta vs full"});

    const double full = run_f1(fleet, {});
    table.add_row({"all features", bench::fmt(full), "-"});
    table.add_rule();
    for (features::FeatureGroup group : groups) {
      const double f1 = run_f1(fleet, without_group(schema, group));
      table.add_row({std::string("without ") + feature_group_name(group),
                     bench::fmt(f1), bench::fmt(f1 - full, 2)});
    }
    table.add_rule();
    for (features::FeatureGroup group : groups) {
      const double f1 = run_f1(fleet, schema.group_indices(group));
      table.add_row({std::string("only ") + feature_group_name(group),
                     bench::fmt(f1), bench::fmt(f1 - full, 2)});
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("");
    std::fflush(stdout);
  }
  std::puts(
      "Expected shape: bit-level features matter most on Purley (the weak\n"
      "single-chip ECC region is visible in DQ/beat maps); spatial\n"
      "(multi-device) structure matters on Whitley/K920; static configuration\n"
      "and workload metrics alone predict almost nothing — reproducing the\n"
      "field observation [27] that workload plays a minor role next to CEs.");
  return 0;
}
