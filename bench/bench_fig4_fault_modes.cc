// Regenerates paper Fig 4: relative UE rate per inferred fault mode (cell /
// column / row / bank / single-device / multi-device) for each platform,
// plus the UE-population composition behind Finding 2.
#include <cstdio>

#include "bench_common.h"
#include "common/table.h"
#include "core/fault_analysis.h"
#include "sim/fleet.h"

int main() {
  using namespace memfp;

  for (const sim::ScenarioParams& scenario : sim::all_platform_scenarios()) {
    const sim::FleetTrace fleet =
        sim::simulate_fleet(scenario.scaled(bench::bench_scale()));
    const std::vector<core::FaultModeEntry> entries =
        core::fault_mode_ue_rates(fleet);

    TextTable table(std::string("Fig 4: Relative % of UE - ") +
                    dram::platform_name(fleet.platform));
    table.set_header(
        {"fault mode", "DIMMs", "UE DIMMs", "UE rate", "relative"});
    for (const core::FaultModeEntry& entry : entries) {
      table.add_row({entry.category, std::to_string(entry.dimms),
                     std::to_string(entry.ue_dimms),
                     format_percent(entry.ue_rate, 1),
                     bench::fmt(entry.relative)});
    }
    std::fputs(table.render().c_str(), stdout);

    const core::UeComposition comp = core::ue_device_composition(fleet);
    std::printf(
        "UE population composition: %s single-device, %s multi-device "
        "(%zu UE DIMMs with CE history)\n\n",
        format_percent(comp.single_device_share, 0).c_str(),
        format_percent(comp.multi_device_share, 0).c_str(), comp.ue_dimms);
  }
  std::puts(
      "Paper reference (Finding 2): row/bank faults carry the most UE risk\n"
      "on every platform; Purley UEs come mainly from single-device faults,\n"
      "Whitley and K920 UEs from multi-device faults.");
  return 0;
}
