// Campaign engine bench (ROADMAP item 5): runs the same ≥24-point
// fault × ECC × predictor × policy sweep twice — once through the
// content-addressed stage cache (work-sharing path) and once as the naive
// per-config pipeline that re-simulates, re-extracts, re-trains and
// re-scores every point — and records the wall-clock ratio. Both runs use
// the same fixed thread count, and the folded campaign hashes must match:
// the speedup is pure work-sharing, not a different computation.
//
// Usage: bench_campaign [BENCH_campaign.json]
//   With a path, writes the machine-readable trajectory (what
//   tools/run_benches.sh records); without, prints the tables only.
//   MEMFP_BENCH_SCALE scales the simulated fleets (e.g. 0.1 for a smoke
//   run; the naive leg is the expensive one).
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "core/campaign.h"
#include "core/fault_analysis.h"
#include "sim/scenario.h"

namespace {

using namespace memfp;

constexpr int kThreads = 4;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// 2 scenarios x 2 ECC x 2 predictors x 6 policies = 48 config points.
/// The shared path runs 4 simulates, 8 extract/train/score pipelines and 8
/// vectorized policy sweeps; the naive path runs all 48 pipelines.
core::CampaignSpec bench_spec(double scale) {
  core::CampaignSpec spec;
  spec.name = "bench-sweep";

  core::ScenarioSpec purley;
  purley.name = "purley";
  purley.params = sim::purley_scenario(/*seed=*/21).scaled(0.12 * scale);
  spec.scenarios.push_back(purley);
  core::ScenarioSpec whitley;
  whitley.name = "whitley";
  whitley.params = sim::whitley_scenario(/*seed=*/22).scaled(0.12 * scale);
  spec.scenarios.push_back(whitley);

  core::EccSpec platform_ecc;
  platform_ecc.name = "platform";
  spec.eccs.push_back(platform_ecc);
  core::EccSpec secded;
  secded.name = "sec-ded";
  secded.ecc = dram::EccChoice::kSecDed;
  spec.eccs.push_back(secded);

  core::PredictorSpec gbdt;
  gbdt.name = "gbdt";
  spec.predictors.push_back(gbdt);
  core::PredictorSpec gbdt_short;
  gbdt_short.name = "gbdt-short";
  gbdt_short.windows.observation = days(3);
  gbdt_short.windows.prediction = days(15);
  gbdt_short.train_seed = 29;
  spec.predictors.push_back(gbdt_short);

  core::PolicySpec tuned;
  tuned.name = "tuned";
  spec.policies.push_back(tuned);
  core::PolicySpec eager;
  eager.name = "eager-0.8";
  eager.tuned_scale = 0.8;
  spec.policies.push_back(eager);
  core::PolicySpec cautious;
  cautious.name = "cautious-1.2";
  cautious.tuned_scale = 1.2;
  spec.policies.push_back(cautious);
  for (const double threshold : {0.3, 0.5, 0.9}) {
    core::PolicySpec fixed;
    fixed.name = "fixed-" + bench::fmt(threshold, 1);
    fixed.mode = core::PolicySpec::Threshold::kFixed;
    fixed.fixed_threshold = threshold;
    fixed.prediction_guided_offlining = threshold < 0.9;
    spec.policies.push_back(fixed);
  }
  return spec;
}

struct Leg {
  core::CampaignResult result;
  double seconds = 0.0;
};

Leg run_leg(const core::CampaignSpec& spec, const std::string& store_dir,
            bool share_stages) {
  core::CampaignConfig config;
  config.store_dir = store_dir;
  config.num_threads = kThreads;
  config.share_stages = share_stages;
  core::CampaignEngine engine(config);
  const auto start = std::chrono::steady_clock::now();
  Leg leg;
  leg.result = engine.run(spec);
  leg.seconds = seconds_since(start);
  return leg;
}

void emit_stage_executions(bench::JsonEmitter& json, const char* key,
                           const Leg& leg) {
  const core::CampaignRunStats& stats = leg.result.stats;
  json.begin_object(key);
  json.field("seconds", leg.seconds);
  json.field("simulate_runs", stats.simulate.misses);
  json.field("extract_runs", stats.extract.misses);
  json.field("train_runs", stats.train.misses);
  json.field("score_runs", stats.score.misses);
  json.field("policy_sweeps", stats.policy_sweeps);
  json.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : nullptr;
  const double scale = bench::bench_scale();
  const core::CampaignSpec spec = bench_spec(scale);

  const auto store_root =
      std::filesystem::temp_directory_path() / "memfp_campaign_bench";
  std::filesystem::remove_all(store_root);
  std::filesystem::create_directories(store_root);

  // Naive first (the expensive leg), shared second; each leg gets its own
  // store so the naive engine's re-simulations never collide with the
  // shared engine's cached shard directories.
  const Leg naive =
      run_leg(spec, (store_root / "naive").string(), /*share_stages=*/false);
  const Leg shared =
      run_leg(spec, (store_root / "shared").string(), /*share_stages=*/true);
  std::filesystem::remove_all(store_root);

  MEMFP_CHECK(shared.result.campaign_hash == naive.result.campaign_hash)
      << "work-sharing changed the campaign result";
  const double speedup = naive.seconds / shared.seconds;

  TextTable table("Campaign sweep: shared stage cache vs naive pipeline (" +
                  std::to_string(spec.points()) + " points, " +
                  std::to_string(kThreads) + " threads)");
  table.set_header({"path", "sec", "simulate", "extract", "train", "score",
                    "sweeps", "speedup"});
  const auto row = [&](const char* name, const Leg& leg, double factor) {
    const core::CampaignRunStats& stats = leg.result.stats;
    table.add_row({name, bench::fmt(leg.seconds),
                   std::to_string(stats.simulate.misses),
                   std::to_string(stats.extract.misses),
                   std::to_string(stats.train.misses),
                   std::to_string(stats.score.misses),
                   std::to_string(stats.policy_sweeps),
                   factor > 0.0 ? bench::fmt(factor) + "x" : "-"});
  };
  row("naive", naive, 0.0);
  row("shared", shared, speedup);
  std::printf("%s", table.render().c_str());

  // Root-cause attribution of the headline point (first scenario/ECC/
  // predictor, tuned policy): which fault classes the predictor+policy
  // misses, not just how many DIMMs.
  const core::CampaignPointResult& headline = shared.result.points.front();
  TextTable attribution("Attribution by fault class (" + headline.name + ")");
  attribution.set_header(
      {"fault class", "DIMMs", "TP", "FN", "FP", "TN", "FN rate", "FP rate"});
  for (const core::FaultClassAttribution& entry : headline.attribution) {
    if (entry.dimms == 0) continue;
    attribution.add_row({core::fault_class_name(entry.fault_class),
                         std::to_string(entry.dimms),
                         std::to_string(entry.true_positives),
                         std::to_string(entry.false_negatives),
                         std::to_string(entry.false_positives),
                         std::to_string(entry.true_negatives),
                         bench::fmt(entry.fn_rate), bench::fmt(entry.fp_rate)});
  }
  std::printf("%s", attribution.render().c_str());

  if (out_path != nullptr) {
    std::FILE* out = std::fopen(out_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "bench_campaign: cannot write %s\n", out_path);
      return 1;
    }
    char hash_hex[32];
    std::snprintf(hash_hex, sizeof hash_hex, "0x%016llx",
                  static_cast<unsigned long long>(shared.result.campaign_hash));
    bench::JsonEmitter json;
    json.begin_object();
    bench::emit_context(json);
    json.field("threads", kThreads);
    json.field("num_points", spec.points());
    json.begin_object("axes");
    json.field("scenarios", spec.scenarios.size());
    json.field("eccs", spec.eccs.size());
    json.field("predictors", spec.predictors.size());
    json.field("policies", spec.policies.size());
    json.end_object();
    emit_stage_executions(json, "naive", naive);
    emit_stage_executions(json, "shared", shared);
    json.field("speedup", speedup);
    json.field("hash_match", true);
    json.field("campaign_hash", hash_hex);
    json.begin_array("points");
    for (const core::CampaignPointResult& point : shared.result.points) {
      json.begin_object();
      json.field("name", point.name);
      json.field("threshold", point.threshold, 4);
      json.field("tp", point.confusion.tp);
      json.field("fp", point.confusion.fp);
      json.field("fn", point.confusion.fn);
      json.field("tn", point.confusion.tn);
      json.field("precision", point.precision, 4);
      json.field("recall", point.recall, 4);
      json.field("f1", point.f1, 4);
      json.field("realized_virr", point.mitigation.realized_virr, 4);
      json.field("prevention_rate", point.offline.prevention_rate, 4);
      json.end_object();
    }
    json.end_array();
    json.begin_array("attribution");
    for (const core::FaultClassAttribution& entry : headline.attribution) {
      json.begin_object();
      json.field("fault_class", core::fault_class_name(entry.fault_class));
      json.field("dimms", entry.dimms);
      json.field("tp", entry.true_positives);
      json.field("fn", entry.false_negatives);
      json.field("fp", entry.false_positives);
      json.field("tn", entry.true_negatives);
      json.field("fn_rate", entry.fn_rate, 4);
      json.field("fp_rate", entry.fp_rate, 4);
      json.end_object();
    }
    json.end_array();
    json.end_object();
    std::fputs(json.str().c_str(), out);
    std::fclose(out);
  }
  return 0;
}
