// Shared helpers for the reproduction benches: scale control, formatting,
// and process memory accounting.
#pragma once

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/string_utils.h"

namespace memfp::bench {

/// CPUs currently online (sysconf), 0 when unknown. google benchmark's own
/// `num_cpus` context field comes from its CPUInfo probe, which reports 1
/// inside this VM — trajectory files record this value instead so the
/// thread-scaling numbers say what parallelism was actually available.
inline int num_cpus_online() {
  const long n = ::sysconf(_SC_NPROCESSORS_ONLN);
  return n > 0 ? static_cast<int>(n) : 0;
}

/// Fleet scale factor, settable via MEMFP_BENCH_SCALE (default 1.0). Lets a
/// quick smoke run (e.g. 0.2) exercise every bench cheaply.
inline double bench_scale() {
  const char* env = std::getenv("MEMFP_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double value = std::atof(env);
  return value > 0.0 ? value : 1.0;
}

inline std::string fmt(double value, int precision = 2) {
  return format_double(value, precision);
}

/// Nearest-rank percentile of a sample: the smallest element with at least
/// p percent of the sample at or below it. `p` is clamped to [0, 100];
/// an empty sample yields 0. Takes the sample by value (sorts a copy), so
/// callers can keep their measurement order.
inline double percentile(std::vector<double> sample, double p) {
  if (sample.empty()) return 0.0;
  std::sort(sample.begin(), sample.end());
  if (p <= 0.0) return sample.front();
  if (p >= 100.0) return sample.back();
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sample.size())));
  return sample[rank - 1];
}

/// p50/p95/p99 of a latency sample in one pass over one sorted copy — the
/// shape every bench records. Zeros when the sample is empty.
struct LatencySummary {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

inline LatencySummary summarize_latencies(std::vector<double> sample) {
  LatencySummary summary;
  if (sample.empty()) return summary;
  std::sort(sample.begin(), sample.end());
  const auto at = [&](double p) {
    const auto rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(sample.size())));
    return sample[std::min(rank == 0 ? 0 : rank - 1, sample.size() - 1)];
  };
  summary.p50 = at(50.0);
  summary.p95 = at(95.0);
  summary.p99 = at(99.0);
  return summary;
}

/// Peak resident set size of this process in bytes (VmHWM from
/// /proc/self/status). Monotone over the process lifetime — read it after
/// each phase to see which one set the high-water mark. Returns 0 on
/// platforms without procfs, so callers must treat 0 as "unknown", not
/// "tiny".
inline std::size_t peak_rss_bytes() {
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return 0;
  char line[256];
  std::size_t kib = 0;
  while (std::fgets(line, sizeof line, status) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kib = static_cast<std::size_t>(std::strtoull(line + 6, nullptr, 10));
      break;
    }
  }
  std::fclose(status);
  return kib * 1024;
}

}  // namespace memfp::bench
