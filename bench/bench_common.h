// Shared helpers for the reproduction benches: scale control and formatting.
#pragma once

#include <cstdlib>
#include <string>

#include "common/string_utils.h"

namespace memfp::bench {

/// Fleet scale factor, settable via MEMFP_BENCH_SCALE (default 1.0). Lets a
/// quick smoke run (e.g. 0.2) exercise every bench cheaply.
inline double bench_scale() {
  const char* env = std::getenv("MEMFP_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double value = std::atof(env);
  return value > 0.0 ? value : 1.0;
}

inline std::string fmt(double value, int precision = 2) {
  return format_double(value, precision);
}

}  // namespace memfp::bench
