// Shared helpers for the reproduction benches: scale control, formatting,
// process memory accounting, and the JSON trajectory writer every
// tools/run_benches.sh leg records through.
#pragma once

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.h"
#include "common/string_utils.h"

namespace memfp::bench {

/// CPUs currently online (sysconf), 0 when unknown. google benchmark's own
/// `num_cpus` context field comes from its CPUInfo probe, which reports 1
/// inside this VM — trajectory files record this value instead so the
/// thread-scaling numbers say what parallelism was actually available.
inline int num_cpus_online() {
  const long n = ::sysconf(_SC_NPROCESSORS_ONLN);
  return n > 0 ? static_cast<int>(n) : 0;
}

/// Fleet scale factor, settable via MEMFP_BENCH_SCALE (default 1.0). Lets a
/// quick smoke run (e.g. 0.2) exercise every bench cheaply.
inline double bench_scale() {
  const char* env = std::getenv("MEMFP_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double value = std::atof(env);
  return value > 0.0 ? value : 1.0;
}

inline std::string fmt(double value, int precision = 2) {
  return format_double(value, precision);
}

/// Nearest-rank percentile of a sample: the smallest element with at least
/// p percent of the sample at or below it. `p` is clamped to [0, 100];
/// an empty sample yields 0. Takes the sample by value (sorts a copy), so
/// callers can keep their measurement order.
inline double percentile(std::vector<double> sample, double p) {
  if (sample.empty()) return 0.0;
  std::sort(sample.begin(), sample.end());
  if (p <= 0.0) return sample.front();
  if (p >= 100.0) return sample.back();
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sample.size())));
  return sample[rank - 1];
}

/// p50/p95/p99 of a latency sample in one pass over one sorted copy — the
/// shape every bench records. Zeros when the sample is empty.
struct LatencySummary {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

inline LatencySummary summarize_latencies(std::vector<double> sample) {
  LatencySummary summary;
  if (sample.empty()) return summary;
  std::sort(sample.begin(), sample.end());
  const auto at = [&](double p) {
    const auto rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(sample.size())));
    return sample[std::min(rank == 0 ? 0 : rank - 1, sample.size() - 1)];
  };
  summary.p50 = at(50.0);
  summary.p95 = at(95.0);
  summary.p99 = at(99.0);
  return summary;
}

/// Escapes a string for use inside a JSON string literal: quotes,
/// backslashes and control characters; everything else passes through
/// byte-for-byte (the trajectory files are ASCII plus whatever part numbers
/// carry).
inline std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Streaming writer for the BENCH_*.json trajectory files. Keys are emitted
/// in call order (so every leg's output has a stable field order across
/// runs), strings go through json_escape, and doubles through bench::fmt —
/// one JSON dialect for all the run_benches.sh legs instead of per-bench
/// hand-rolled fprintf format strings. The writer accumulates into a string
/// (trajectories are small); callers write str() out once at the end.
class JsonEmitter {
 public:
  void begin_object() { open('{', nullptr); }
  void begin_object(const char* key) { open('{', key); }
  void begin_array(const char* key) { open('[', key); }
  void end_object() { close('}'); }
  void end_array() { close(']'); }

  void field(const char* key, std::string_view value) {
    item(key);
    out_ += '"';
    out_ += json_escape(value);
    out_ += '"';
  }
  void field(const char* key, const char* value) {
    field(key, std::string_view(value));
  }
  void field(const char* key, bool value) {
    item(key);
    out_ += value ? "true" : "false";
  }
  void field(const char* key, double value, int precision = 2) {
    item(key);
    out_ += fmt(value, precision);
  }
  /// One overload per integer family the benches record; kept exact (no
  /// double round-trip).
  void field(const char* key, int value) {
    item(key);
    out_ += std::to_string(value);
  }
  void field(const char* key, std::size_t value) {
    item(key);
    out_ += std::to_string(value);
  }
  void field(const char* key, unsigned long long value) {
    item(key);
    out_ += std::to_string(value);
  }

  /// The finished document (call after the last end_object).
  const std::string& str() const {
    MEMFP_CHECK(stack_.empty()) << "JsonEmitter: unclosed frame";
    return out_;
  }

 private:
  struct Frame {
    bool first = true;
  };

  void item(const char* key) {
    MEMFP_CHECK(!stack_.empty()) << "JsonEmitter: field outside any frame";
    if (!stack_.back().first) out_ += ',';
    stack_.back().first = false;
    out_ += '\n';
    out_.append(2 * stack_.size(), ' ');
    if (key != nullptr) {
      out_ += '"';
      out_ += json_escape(key);
      out_ += "\": ";
    }
  }

  void open(char bracket, const char* key) {
    if (stack_.empty()) {
      MEMFP_CHECK(out_.empty()) << "JsonEmitter: second top-level value";
    } else {
      item(key);
    }
    out_ += bracket;
    stack_.push_back(Frame{});
  }

  void close(char bracket) {
    MEMFP_CHECK(!stack_.empty()) << "JsonEmitter: close without open";
    const bool empty_frame = stack_.back().first;
    stack_.pop_back();
    if (!empty_frame) {
      out_ += '\n';
      out_.append(2 * stack_.size(), ' ');
    }
    out_ += bracket;
    if (stack_.empty()) out_ += '\n';
  }

  std::string out_;
  std::vector<Frame> stack_;
};

/// Shared context header for every trajectory file: who generated it, at
/// what scale, on how many CPUs. One fixed key order so cross-bench tooling
/// greps the same prefix everywhere.
inline void emit_context(JsonEmitter& json) {
  json.field("generated_by", "tools/run_benches.sh");
  json.field("bench_scale", bench_scale());
  json.field("num_cpus", num_cpus_online());
}

/// Peak resident set size of this process in bytes (VmHWM from
/// /proc/self/status). Monotone over the process lifetime — read it after
/// each phase to see which one set the high-water mark. Returns 0 on
/// platforms without procfs, so callers must treat 0 as "unknown", not
/// "tiny".
inline std::size_t peak_rss_bytes() {
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return 0;
  char line[256];
  std::size_t kib = 0;
  while (std::fgets(line, sizeof line, status) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kib = static_cast<std::size_t>(std::strtoull(line + 6, nullptr, 10));
      break;
    }
  }
  std::fclose(status);
  return kib * 1024;
}

}  // namespace memfp::bench
