// Shared helpers for the reproduction benches: scale control, formatting,
// and process memory accounting.
#pragma once

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/string_utils.h"

namespace memfp::bench {

/// CPUs currently online (sysconf), 0 when unknown. google benchmark's own
/// `num_cpus` context field comes from its CPUInfo probe, which reports 1
/// inside this VM — trajectory files record this value instead so the
/// thread-scaling numbers say what parallelism was actually available.
inline int num_cpus_online() {
  const long n = ::sysconf(_SC_NPROCESSORS_ONLN);
  return n > 0 ? static_cast<int>(n) : 0;
}

/// Fleet scale factor, settable via MEMFP_BENCH_SCALE (default 1.0). Lets a
/// quick smoke run (e.g. 0.2) exercise every bench cheaply.
inline double bench_scale() {
  const char* env = std::getenv("MEMFP_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double value = std::atof(env);
  return value > 0.0 ? value : 1.0;
}

inline std::string fmt(double value, int precision = 2) {
  return format_double(value, precision);
}

/// Peak resident set size of this process in bytes (VmHWM from
/// /proc/self/status). Monotone over the process lifetime — read it after
/// each phase to see which one set the high-water mark. Returns 0 on
/// platforms without procfs, so callers must treat 0 as "unknown", not
/// "tiny".
inline std::size_t peak_rss_bytes() {
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return 0;
  char line[256];
  std::size_t kib = 0;
  while (std::fgets(line, sizeof line, status) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kib = static_cast<std::size_t>(std::strtoull(line + 6, nullptr, 10));
      break;
    }
  }
  std::fclose(status);
  return kib * 1024;
}

}  // namespace memfp::bench
