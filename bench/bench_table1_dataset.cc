// Regenerates paper Table I: dataset overview per CPU platform — DIMMs with
// CEs, DIMMs with UEs, and the predictable vs sudden UE split.
//
// Absolute counts are the scaled-down synthetic fleet's; the ratios are the
// reproduction targets (Purley 73/27 predictable/sudden, Whitley 42/58,
// K920 82/18; UE-rate ordering Purley > Whitley > K920).
#include <cstdio>

#include "bench_common.h"
#include "common/table.h"
#include "sim/fleet.h"

int main() {
  using namespace memfp;

  TextTable table("Table I: Description of Dataset (synthetic fleet)");
  table.set_header({"CPU Platform", "DIMMs with CEs", "DIMMs with UEs",
                    "UE rate", "Predictable UE %", "Sudden UE %"});

  for (const sim::ScenarioParams& scenario : sim::all_platform_scenarios()) {
    const sim::FleetTrace fleet =
        sim::simulate_fleet(scenario.scaled(bench::bench_scale()));
    const double ue = static_cast<double>(fleet.dimms_with_ue());
    const double predictable =
        ue > 0 ? static_cast<double>(fleet.predictable_ue_dimms()) / ue : 0.0;
    table.add_row({
        dram::platform_name(fleet.platform),
        std::to_string(fleet.dimms_with_ce()),
        std::to_string(fleet.dimms_with_ue()),
        format_percent(ue / static_cast<double>(fleet.dimms_with_ce()), 1),
        format_percent(predictable, 0),
        format_percent(1.0 - predictable, 0),
    });
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\nPaper reference: Purley 73%/27%, Whitley 42%/58%, K920 82%/18%;\n"
      "UE incidence ordering Purley > Whitley > K920 (Finding 1).");
  return 0;
}
