// Ablation over the Fig 3 problem geometry: observation window dt_d, lead
// time dt_l and prediction window dt_p (the paper fixes 5d / <=3h / 30d
// after production tuning; this sweep shows the sensitivity).
#include <cstdio>

#include "bench_common.h"
#include "common/table.h"
#include "core/pipeline.h"
#include "sim/fleet.h"

namespace {

using namespace memfp;

core::Experiment::Result run_with_windows(const sim::FleetTrace& fleet,
                                          SimDuration observation,
                                          SimDuration lead,
                                          SimDuration prediction) {
  core::PipelineConfig config;
  config.windows.observation = observation;
  config.windows.lead = lead;
  config.windows.prediction = prediction;
  core::Experiment experiment(fleet, config);
  return experiment.run(core::Algorithm::kLightGbm);
}

std::string duration_name(SimDuration d) {
  if (d % kDay == 0) return std::to_string(d / kDay) + "d";
  if (d % kHour == 0) return std::to_string(d / kHour) + "h";
  return std::to_string(d / kMinute) + "m";
}

}  // namespace

int main() {
  const sim::FleetTrace fleet = sim::simulate_fleet(
      sim::purley_scenario().scaled(0.6 * bench::bench_scale()));

  TextTable table(
      "Window ablation on Intel Purley (LightGBM), paper default 5d/3h/30d");
  table.set_header({"dt_d (obs)", "dt_l (lead)", "dt_p (pred)", "Precision",
                    "Recall", "F1", "VIRR"});

  struct Case {
    SimDuration observation, lead, prediction;
  };
  const Case cases[] = {
      {days(5), hours(3), days(30)},  // paper default
      {days(1), hours(3), days(30)},  // short memory
      {days(10), hours(3), days(30)}, // long memory
      {days(5), minutes(30), days(30)},
      {days(5), hours(12), days(30)},
      {days(5), hours(48), days(30)},  // demanding lead time
      {days(5), hours(3), days(7)},    // tight validity
      {days(5), hours(3), days(60)},   // loose validity
  };
  for (const Case& c : cases) {
    const core::Experiment::Result result =
        run_with_windows(fleet, c.observation, c.lead, c.prediction);
    table.add_row({duration_name(c.observation), duration_name(c.lead),
                   duration_name(c.prediction), bench::fmt(result.precision),
                   bench::fmt(result.recall), bench::fmt(result.f1),
                   bench::fmt(result.virr)});
    std::fflush(stdout);
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\nExpected shape: F1 is robust for leads up to hours (predictable UEs\n"
      "announce themselves days ahead) and degrades with multi-day lead\n"
      "requirements or a very tight validity window; the paper's 5d/3h/30d\n"
      "sits on the flat part of the curve.");
  return 0;
}
