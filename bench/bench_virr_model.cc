// Regenerates the paper's Fig 2 / Section IV VIRR model: how the VM
// Interruption Reduction Rate behaves as a function of precision, recall and
// the cold-migration fraction y_c — including the sign flip at
// precision == y_c — and cross-checks the analytic formula against the
// event-level mitigation accounting of the alarm simulator.
#include <cstdio>

#include "bench_common.h"
#include "common/table.h"
#include "ml/metrics.h"
#include "mlops/alarm.h"

namespace {

using namespace memfp;

/// Builds a synthetic fleet + alarms realizing an exact confusion matrix.
mlops::MitigationReport realize(std::size_t tp, std::size_t fp,
                                std::size_t fn, double yc) {
  sim::FleetTrace fleet;
  mlops::AlarmSystem alarms;
  features::PredictionWindows windows;
  dram::DimmId next = 0;
  const auto add_positive = [&](bool alarmed) {
    sim::DimmTrace dimm;
    dimm.id = next++;
    dram::CeEvent ce;
    ce.time = days(1);
    ce.pattern.add({0, 0});
    dimm.ces.push_back(ce);
    dimm.ue = dram::UeEvent{};
    dimm.ue->time = days(20);
    dimm.ue->had_prior_ce = true;
    fleet.dimms.push_back(dimm);
    if (alarmed) alarms.raise(dimm.id, days(18), 0.9);
  };
  for (std::size_t i = 0; i < tp; ++i) add_positive(true);
  for (std::size_t i = 0; i < fn; ++i) add_positive(false);
  for (std::size_t i = 0; i < fp; ++i) {
    sim::DimmTrace dimm;
    dimm.id = next++;
    fleet.dimms.push_back(dimm);
    alarms.raise(dimm.id, days(5), 0.8);
  }
  mlops::MitigationPolicy policy;
  policy.cold_migration_fraction = yc;
  return mlops::account_mitigations(fleet, alarms, windows, policy);
}

}  // namespace

int main() {
  using namespace memfp;

  TextTable table(
      "VIRR model: (1 - y_c/precision) * recall vs event-level accounting");
  table.set_header({"precision", "recall", "y_c", "VIRR (formula)",
                    "VIRR (realized)", "note"});

  struct Case {
    std::size_t tp, fp, fn;
    double yc;
    const char* note;
  };
  const Case cases[] = {
      {54, 46, 13, 0.10, "paper Purley LightGBM operating point"},
      {80, 20, 20, 0.10, "high-precision regime"},
      {30, 70, 10, 0.10, "low-precision regime"},
      {10, 90, 10, 0.10, "precision == y_c: VIRR crosses zero"},
      {5, 95, 10, 0.10, "precision < y_c: prediction hurts"},
      {54, 46, 13, 0.00, "ideal mitigation (y_c = 0): VIRR = recall"},
      {54, 46, 13, 0.30, "weak mitigation (y_c = 0.3)"},
  };
  for (const Case& c : cases) {
    ml::Confusion confusion{c.tp, c.fp, c.fn, 1000};
    const mlops::MitigationReport realized =
        realize(c.tp, c.fp, c.fn, c.yc);
    table.add_row({bench::fmt(confusion.precision()),
                   bench::fmt(confusion.recall()), bench::fmt(c.yc),
                   bench::fmt(confusion.virr(c.yc), 3),
                   bench::fmt(realized.realized_virr, 3), c.note});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\nThe two columns agree by construction: the analytic VIRR of [29] is\n"
      "exactly the interruption balance realized by the mitigation simulator.");
  return 0;
}
