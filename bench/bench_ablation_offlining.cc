// Extension ablation: how much do the RAS mitigations of Section II-C
// actually buy, and what does failure prediction add on top? Compares
// reactive page offlining against prediction-guided offlining ([34]) on the
// Purley fleet.
#include <cstdio>

#include "bench_common.h"
#include "common/table.h"
#include "core/predictor.h"
#include "sim/fleet.h"
#include "sim/page_offline.h"

int main() {
  using namespace memfp;

  const sim::FleetTrace fleet = sim::simulate_fleet(
      sim::purley_scenario().scaled(0.5 * bench::bench_scale()));

  TextTable table("Page offlining ablation - Intel Purley");
  table.set_header({"policy", "rows retired", "CEs avoided", "UEs avoided",
                    "prevention rate"});

  // Reactive-only sweeps over the CE threshold.
  for (int threshold : {4, 12, 32}) {
    sim::PageOfflinePolicy policy;
    policy.ce_threshold = threshold;
    const sim::FleetOfflineReport report =
        sim::evaluate_page_offlining(fleet, policy);
    table.add_row({"reactive, threshold " + std::to_string(threshold),
                   std::to_string(report.rows_offlined),
                   std::to_string(report.ces_avoided),
                   std::to_string(report.ues_avoided) + "/" +
                       std::to_string(report.ues_total),
                   format_percent(report.prevention_rate, 1)});
  }

  // Prediction-guided: train a predictor, retire hot rows on alarm.
  core::MemoryFailurePredictor predictor(dram::Platform::kIntelPurley);
  predictor.train(fleet);
  sim::PageOfflinePolicy policy;
  policy.ce_threshold = 12;
  std::size_t ues_total = 0, ues_avoided = 0, rows = 0;
  std::uint64_t ces_avoided = 0;
  for (const sim::DimmTrace& dimm : fleet.dimms) {
    if (dimm.ces.empty()) continue;
    // Find the predictor's first alarm by scanning at a 2-day cadence.
    std::optional<SimTime> alarm;
    const SimTime end = dimm.ue ? dimm.ue->time : fleet.horizon;
    for (SimTime t = days(2); t < end; t += days(2)) {
      if (predictor.predict(dimm, t)) {
        alarm = t;
        break;
      }
    }
    const sim::OfflineOutcome outcome =
        sim::apply_page_offlining(dimm, policy, alarm);
    rows += static_cast<std::size_t>(outcome.rows_offlined);
    ces_avoided += outcome.ces_avoided;
    if (dimm.predictable_ue()) {
      ++ues_total;
      ues_avoided += outcome.ue_row_offlined;
    }
  }
  table.add_row({"prediction-guided (threshold 12 + alarms)",
                 std::to_string(rows), std::to_string(ces_avoided),
                 std::to_string(ues_avoided) + "/" + std::to_string(ues_total),
                 format_percent(ues_total == 0
                                    ? 0.0
                                    : static_cast<double>(ues_avoided) /
                                          static_cast<double>(ues_total),
                                1)});
  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\nExpected shape: reactive offlining alone catches only the UEs whose\n"
      "row got hot first; adding the failure predictor's alarms retires the\n"
      "right rows before the fatal pattern lands — the motivation for\n"
      "prediction-guided RAS in the paper's Section II-C.");
  return 0;
}
